"""SLiMFast's accuracy model (paper Equations 2-3).

The model assigns each source an estimated accuracy

    ``A_s = sigmoid(b + w_s + sum_k w_k f_{s,k})``

where ``w_s`` is the source-indicator weight, ``f_{s,k}`` the binary domain
features and ``b`` an optional shared intercept (zero in the paper's
formulation; useful for predicting accuracies of unseen sources).  The trust
score entering the object posterior is the log-odds
``sigma_s = logit(A_s)``, which for this parameterization is simply the
linear score itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.features import FeatureSpace
from ..fusion.types import NotFittedError, SourceId
from ..optim.numerics import sigmoid


@dataclass
class AccuracyModel:
    """Fitted parameters of SLiMFast's logistic accuracy model.

    Attributes
    ----------
    w_sources:
        Per-source indicator weights, aligned to ``source_ids``.
    w_features:
        Domain-feature weights, aligned to the feature-space columns.
    design:
        The ``|S| x |K|`` binary design matrix the model was fitted with.
    source_ids:
        Source identifiers in index order.
    feature_space:
        The fitted :class:`FeatureSpace` (``None`` when no features used).
    intercept:
        Shared bias term (0 unless fitted with ``intercept=True``).
    w_extra:
        Extension weights (e.g. copying features); empty by default.
    """

    w_sources: np.ndarray
    w_features: np.ndarray
    design: np.ndarray
    source_ids: List[SourceId]
    feature_space: Optional[FeatureSpace] = None
    intercept: float = 0.0
    w_extra: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __post_init__(self) -> None:
        self.w_sources = np.asarray(self.w_sources, dtype=float)
        self.w_features = np.asarray(self.w_features, dtype=float)
        self.design = np.asarray(self.design, dtype=float)
        if self.design.shape != (len(self.source_ids), self.w_features.shape[0]):
            raise ValueError(
                "design must be |S| x |K|: got "
                f"{self.design.shape} for {len(self.source_ids)} sources and "
                f"{self.w_features.shape[0]} features"
            )
        if self.w_sources.shape[0] != len(self.source_ids):
            raise ValueError("w_sources must align with source_ids")

    # ------------------------------------------------------------------
    # Scores and accuracies
    # ------------------------------------------------------------------
    def trust_scores(self) -> np.ndarray:
        """Per-source log-odds scores ``sigma_s`` (Equation 2)."""
        return self.intercept + self.w_sources + self.design @ self.w_features

    def accuracies(self) -> np.ndarray:
        """Estimated accuracies ``A_s`` per source index (Equation 3)."""
        return sigmoid(self.trust_scores())

    def accuracy_map(self) -> Dict[SourceId, float]:
        """Estimated accuracies keyed by source identifier."""
        accs = self.accuracies()
        return {source: float(accs[i]) for i, source in enumerate(self.source_ids)}

    # ------------------------------------------------------------------
    # Unseen sources (paper Section 5.3.2)
    # ------------------------------------------------------------------
    def predict_accuracy(self, features: Mapping[str, object]) -> float:
        """Predict the accuracy of a *new* source from its features alone.

        New sources have no indicator weight, so the prediction uses only
        the shared intercept and the learned feature weights — exactly the
        source-quality-initialization functionality of Section 5.3.2.
        """
        if self.feature_space is None or self.feature_space.n_columns == 0:
            raise NotFittedError(
                "predicting unseen-source accuracy requires a model fitted "
                "with domain features"
            )
        # Unseen feature values carry no learned weight, so the Section
        # 5.3.2 prediction treats them as zero contribution regardless of
        # the space's (strict-by-default) transform policy.
        row = self.feature_space.transform_one(features, unseen="zero")
        return float(sigmoid(self.intercept + row @ self.w_features))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def feature_weight_map(self) -> Dict[str, float]:
        """Feature weights keyed by human-readable column label."""
        if self.feature_space is None:
            return {}
        return {
            label: float(self.w_features[i])
            for i, label in enumerate(self.feature_space.column_labels)
        }

    @property
    def n_sources(self) -> int:
        return len(self.source_ids)

    @property
    def n_features(self) -> int:
        return int(self.w_features.shape[0])


def model_from_flat(
    w: np.ndarray,
    dataset: FusionDataset,
    design: np.ndarray,
    feature_space: Optional[FeatureSpace],
    intercept: bool = False,
    n_extra: int = 0,
) -> AccuracyModel:
    """Assemble an :class:`AccuracyModel` from a flat solver vector."""
    n_sources = dataset.n_sources
    n_features = design.shape[1]
    a = n_sources
    b = a + n_features
    c = b + n_extra
    bias = float(w[c]) if intercept else 0.0
    return AccuracyModel(
        w_sources=np.array(w[:a], dtype=float),
        w_features=np.array(w[a:b], dtype=float),
        design=design,
        source_ids=dataset.sources.items,
        feature_space=feature_space,
        intercept=bias,
        w_extra=np.array(w[b:c], dtype=float),
    )
