"""Lasso-path analysis of feature importance (paper Section 5.3.1).

The lasso path fits SLiMFast's accuracy model under a decreasing sequence
of L1 penalties and records the feature weights at each step.  Features
that activate early (at high penalties) and keep growing are the most
predictive of source accuracy — this is how the paper recovers, e.g., that
a web source's bounce rate predicts accuracy while PageRank does not
(Figure 6), and that a crowd worker's labor channel is predictive
(Figure 9).

The path model regresses per-observation correctness on the *domain
features only* (source-indicator weights are excluded so shared signal
cannot hide in them; a shared intercept absorbs the base rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.features import FeatureSpace, build_design_matrix
from ..fusion.types import DatasetError, ObjectId, Value
from ..optim.objectives import ParameterLayout
from ..optim.solvers import fista
from .erm import correctness_training_pairs


@dataclass
class LassoPath:
    """Weights of every feature along the regularization path.

    Attributes
    ----------
    penalties:
        L1 strengths, decreasing (strong regularization first).
    mu:
        The x-axis of the paper's plots: ``1 - penalty / penalty_max`` in
        [0, 1]; higher means *less* regularization.
    weights:
        Array ``(len(penalties), |K|)`` of feature weights per step.
    feature_labels:
        Column labels aligned with the weight columns.
    """

    penalties: np.ndarray
    mu: np.ndarray
    weights: np.ndarray
    feature_labels: List[str]

    def activation_order(self, threshold: float = 1e-6) -> List[str]:
        """Feature labels ordered by when they first become non-zero.

        Ties (features activating at the same step) are broken by absolute
        weight at activation, larger first.  Features that never activate
        are omitted.
        """
        events = []
        for j, label in enumerate(self.feature_labels):
            nonzero = np.where(np.abs(self.weights[:, j]) > threshold)[0]
            if nonzero.size:
                step = int(nonzero[0])
                events.append((step, -abs(float(self.weights[step, j])), label))
        events.sort()
        return [label for _, _, label in events]

    def final_weights(self) -> Dict[str, float]:
        """Feature weights at the weakest penalty, keyed by label."""
        return {label: float(self.weights[-1, j]) for j, label in enumerate(self.feature_labels)}

    def important_features(self, top: int = 5) -> List[str]:
        """The ``top`` earliest-activating features."""
        return self.activation_order()[:top]


def lasso_path(
    dataset: FusionDataset,
    truth: Optional[Mapping[ObjectId, Value]] = None,
    n_penalties: int = 25,
    penalty_floor_ratio: float = 1e-3,
    feature_space: Optional[FeatureSpace] = None,
) -> LassoPath:
    """Fit the L1 path on correctness labels derived from ``truth``.

    ``truth`` defaults to the dataset's full ground truth (the analysis in
    Section 5.3.1 is a post-hoc diagnostic, run with all labels available).
    """
    truth = dict(truth if truth is not None else dataset.ground_truth)
    if not truth:
        raise DatasetError("lasso path requires ground-truth labels")
    design, space = build_design_matrix(dataset, feature_space=feature_space)
    if design.shape[1] == 0:
        raise DatasetError("lasso path requires domain features")

    source_idx, labels = correctness_training_pairs(dataset, truth)
    objective = _FeatureOnlyObjective(source_idx, labels, design)

    # A 5% cushion above the critical penalty keeps the first path point
    # fully sparse despite numerical boundary effects.
    penalty_max = 1.05 * _max_penalty(objective)
    penalties = np.geomspace(penalty_max, penalty_max * penalty_floor_ratio, n_penalties)

    n_features = design.shape[1]
    weights = np.zeros((n_penalties, n_features))
    mask = objective.layout.l1_mask(sources=False, features=True)
    w = np.zeros(objective.n_params)
    for step, penalty in enumerate(penalties):
        result = fista(
            objective,
            l1_strength=float(penalty),
            l1_mask=mask,
            w0=w,
            max_iterations=500,
        )
        w = result.w
        weights[step] = w[: n_features]

    return LassoPath(
        penalties=penalties,
        mu=1.0 - penalties / penalty_max,
        weights=weights,
        feature_labels=space.column_labels,
    )


def _max_penalty(objective: "_FeatureOnlyObjective") -> float:
    """Smallest L1 strength that zeroes every feature weight.

    At ``w = 0`` (features) with the intercept at its optimum, the largest
    absolute feature-gradient component is exactly the critical penalty.
    """
    w = np.zeros(objective.n_params)
    # Set intercept to the base-rate logit so the gradient reflects the
    # feature signal, not the overall correctness rate.
    base = float(np.clip(np.mean(objective.labels), 1e-6, 1 - 1e-6))
    w[-1] = float(np.log(base / (1.0 - base)))
    grad = objective.grad(w)
    feature_grad = grad[: objective.design.shape[1]]
    largest = float(np.max(np.abs(feature_grad))) if feature_grad.size else 0.0
    return max(largest, 1e-6)


class _FeatureOnlyObjective:
    """Correctness loss over features + intercept (no source indicators).

    A thin adapter around :class:`CorrectnessObjective` built with a
    zero-source layout: parameters are ``[w_features | intercept]``.
    """

    def __init__(self, source_idx: np.ndarray, labels: np.ndarray, design: np.ndarray) -> None:
        # Re-index samples onto a single pseudo-source whose design row is
        # the actual source's feature row: equivalently, treat each sample's
        # feature vector directly.  We implement it by building a per-sample
        # design and a trivial source structure.
        self.labels = np.asarray(labels, dtype=float)
        self.design = np.asarray(design, dtype=float)
        self._rows = self.design[np.asarray(source_idx, dtype=np.int64)]
        n_features = self.design.shape[1]
        self.layout = ParameterLayout(n_sources=0, n_features=n_features, intercept=True)
        self.n_params = n_features + 1
        self._n = self.labels.shape[0]

    def value(self, w: np.ndarray) -> float:
        return self.value_and_grad(w)[0]

    def grad(self, w: np.ndarray) -> np.ndarray:
        return self.value_and_grad(w)[1]

    def value_and_grad(self, w: np.ndarray):
        from ..optim.numerics import log_sigmoid, sigmoid

        w_feat = w[:-1]
        bias = float(w[-1])
        z = self._rows @ w_feat + bias
        ll = self.labels * log_sigmoid(z) + (1.0 - self.labels) * log_sigmoid(-z)
        value = -float(np.mean(ll))
        residual = (sigmoid(z) - self.labels) / self._n
        grad = np.concatenate([self._rows.T @ residual, [float(np.sum(residual))]])
        return value, grad
