"""Majority vote — the simple strategy baseline of Section 2.

Every source gets equal weight; the estimated value of an object is the
most frequently claimed one.  Ties break deterministically toward the
first-claimed value.  Majority vote is also the implicit model inside the
optimizer's information-units computation (Example 8).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, Value
from .base import Fuser


class MajorityVote(Fuser):
    """Unweighted plurality vote per object."""

    name = "majority"

    def fit_predict(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> FusionResult:
        train_truth = dict(train_truth or {})
        values: Dict[ObjectId, Value] = {}
        posteriors: Dict[ObjectId, Dict[Value, float]] = {}
        for o_idx, obj in enumerate(dataset.objects):
            counts: Dict[Value, int] = {}
            for row in dataset.object_observation_rows(o_idx):
                claimed = dataset.observations[row].value
                counts[claimed] = counts.get(claimed, 0) + 1
            total = sum(counts.values())
            posteriors[obj] = {value: count / total for value, count in counts.items()}
            best = None
            best_count = -1
            for value in dataset.domain(obj):  # first-seen order breaks ties
                if counts.get(value, 0) > best_count:
                    best_count = counts[value]
                    best = value
            values[obj] = best
        values = self.clamp_training_values(values, train_truth)
        return FusionResult(
            values=values,
            posteriors=posteriors,
            source_accuracies=None,
            method=self.name,
        )
