"""TruthFinder (Yin, Han, Yu, KDD 2007) — iterative trust propagation.

Included as an additional iterative comparator from the paper's related
work ([39]).  TruthFinder alternates between:

* claim confidence: ``sigma(f) = 1 - prod over supporting sources of
  (1 - t_s)`` computed in log-space as ``sum of -ln(1 - t_s)``, followed by
  a dampened logistic squash;
* source trustworthiness: the average confidence of the source's claims.

Ground truth, when revealed, clamps claim confidences exactly like the
other iterative baselines.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, SourceId, Value
from .base import Fuser

_EPS = 1e-6


class TruthFinder(Fuser):
    """Classic iterative trust/confidence fixed point.

    Parameters
    ----------
    gamma:
        Dampening factor of the logistic squash (original paper: 0.3).
    rho:
        Influence of competing claims of the same object (original: 0.5).
    initial_trust:
        Starting trustworthiness of every source (original: 0.9).
    max_iterations, tolerance:
        Iteration budget and cosine-similarity convergence threshold on the
        trust vector.
    """

    name = "truthfinder"

    def __init__(
        self,
        gamma: float = 0.3,
        rho: float = 0.5,
        initial_trust: float = 0.9,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
    ) -> None:
        self.gamma = gamma
        self.rho = rho
        self.initial_trust = initial_trust
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def fit_predict(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> FusionResult:
        train_truth = dict(train_truth or {})

        claim_index: Dict[Tuple[ObjectId, Value], int] = {}
        claim_object: list = []
        for obj in dataset.objects:
            for value in dataset.domain(obj):
                claim_index[(obj, value)] = len(claim_object)
                claim_object.append(obj)
        n_claims = len(claim_object)

        obs_source = np.asarray(
            [dataset.sources.index(obs.source) for obs in dataset.observations],
            dtype=np.int64,
        )
        obs_claim = np.asarray(
            [claim_index[(obs.obj, obs.value)] for obs in dataset.observations],
            dtype=np.int64,
        )
        object_of_claim = np.asarray(
            [dataset.objects.index(obj) for obj in claim_object], dtype=np.int64
        )

        n_sources = dataset.n_sources
        source_degree = np.maximum(np.bincount(obs_source, minlength=n_sources), 1).astype(float)

        anchored = np.zeros(n_claims, dtype=bool)
        anchor = np.zeros(n_claims)
        for obj, true_value in train_truth.items():
            for value in dataset.domain(obj):
                idx = claim_index[(obj, value)]
                anchored[idx] = True
                anchor[idx] = 1.0 if value == true_value else 0.0

        trust = np.full(n_sources, self.initial_trust)
        confidence = np.zeros(n_claims)
        for _ in range(self.max_iterations):
            # Claim scores: sum of -ln(1 - t_s) over supporting sources.
            tau = -np.log(np.clip(1.0 - trust, _EPS, 1.0))
            raw = np.bincount(obs_claim, weights=tau[obs_source], minlength=n_claims)
            # Competing-claim adjustment within each object.
            object_total = np.bincount(object_of_claim, weights=raw, minlength=dataset.n_objects)
            adjusted = raw - self.rho * (object_total[object_of_claim] - raw)
            confidence = 1.0 / (1.0 + np.exp(-self.gamma * adjusted))
            confidence = np.where(anchored, anchor, confidence)

            new_trust = np.bincount(
                obs_source, weights=confidence[obs_claim], minlength=n_sources
            ) / source_degree
            new_trust = np.clip(new_trust, _EPS, 1.0 - _EPS)
            cosine = float(
                new_trust @ trust
                / max(np.linalg.norm(new_trust) * np.linalg.norm(trust), _EPS)
            )
            trust = new_trust
            if 1.0 - cosine < self.tolerance:
                break

        values: Dict[ObjectId, Value] = {}
        posteriors: Dict[ObjectId, Dict[Value, float]] = {}
        for obj in dataset.objects:
            domain = dataset.domain(obj)
            scores = {value: float(confidence[claim_index[(obj, value)]]) for value in domain}
            values[obj] = max(domain, key=lambda value: scores[value])
            norm = sum(scores.values()) or 1.0
            posteriors[obj] = {value: score / norm for value, score in scores.items()}
        values = self.clamp_training_values(values, train_truth)

        trust_map: Dict[SourceId, float] = {
            source: float(trust[dataset.sources.index(source)]) for source in dataset.sources
        }
        return FusionResult(
            values=values,
            posteriors=posteriors,
            source_accuracies=trust_map,
            method=self.name,
        )
