"""SSTF — semi-supervised truth finding (Yin & Tan, WWW 2011).

SSTF propagates trust over the bipartite source/claim graph using the
revealed ground truth as labeled anchors:

* a claim's confidence is the trust-weighted support of the sources
  asserting it, minus support for competing claims of the same object;
* a source's trust is the average confidence of its claims;
* labeled claims stay clamped at +1 (true value) / -1 (competing values).

This is the semi-supervised graph-learning structure of the original
method adapted to the categorical single-truth setting of the paper's
evaluation (the original also uses ontological value similarity, which has
no analogue for opaque categorical values).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, Value
from .base import Fuser


class Sstf(Fuser):
    """Label-propagating semi-supervised truth finder.

    Parameters
    ----------
    max_iterations, tolerance:
        Propagation budget and convergence threshold on claim confidences.
    damping:
        Mix-in weight of the previous iteration (stabilizes oscillation on
        dense conflict graphs).
    influence:
        Strength of cross-claim inhibition within an object: a claim is
        penalized by ``influence`` times the average support of competing
        claims.
    """

    name = "sstf"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        damping: float = 0.3,
        influence: float = 0.5,
    ) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.damping = damping
        self.influence = influence

    def fit_predict(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> FusionResult:
        train_truth = dict(train_truth or {})

        # Enumerate claims: one node per (object, claimed value).
        claim_index: Dict[Tuple[ObjectId, Value], int] = {}
        claim_object: list = []
        for obj in dataset.objects:
            for value in dataset.domain(obj):
                claim_index[(obj, value)] = len(claim_object)
                claim_object.append(obj)
        n_claims = len(claim_object)

        # Membership arrays: which claims each source supports.
        obs_source = np.asarray(
            [dataset.sources.index(obs.source) for obs in dataset.observations],
            dtype=np.int64,
        )
        obs_claim = np.asarray(
            [claim_index[(obs.obj, obs.value)] for obs in dataset.observations],
            dtype=np.int64,
        )
        n_sources = dataset.n_sources
        source_degree = np.maximum(np.bincount(obs_source, minlength=n_sources), 1).astype(float)
        claim_degree = np.maximum(np.bincount(obs_claim, minlength=n_claims), 1).astype(float)

        # Object groupings for the inhibition term.
        object_of_claim = np.asarray(
            [dataset.objects.index(obj) for obj in claim_object], dtype=np.int64
        )
        claims_per_object = np.maximum(
            np.bincount(object_of_claim, minlength=dataset.n_objects), 1
        ).astype(float)

        # Labeled anchors.
        anchor = np.zeros(n_claims)
        anchored = np.zeros(n_claims, dtype=bool)
        for obj, true_value in train_truth.items():
            for value in dataset.domain(obj):
                idx = claim_index[(obj, value)]
                anchored[idx] = True
                anchor[idx] = 1.0 if value == true_value else -1.0

        confidence = np.where(anchored, anchor, 0.0)
        trust = np.full(n_sources, 0.5)
        for _ in range(self.max_iterations):
            support = np.bincount(
                obs_claim, weights=trust[obs_source], minlength=n_claims
            ) / claim_degree
            object_total = np.bincount(
                object_of_claim, weights=support, minlength=dataset.n_objects
            )
            competing = (object_total[object_of_claim] - support) / np.maximum(
                claims_per_object[object_of_claim] - 1.0, 1.0
            )
            raw = np.tanh(support - self.influence * competing)
            updated = self.damping * confidence + (1.0 - self.damping) * raw
            updated = np.where(anchored, anchor, updated)
            delta = float(np.max(np.abs(updated - confidence)))
            confidence = updated
            trust = np.clip(
                np.bincount(obs_source, weights=confidence[obs_claim], minlength=n_sources)
                / source_degree,
                0.0,
                1.0,
            )
            if delta < self.tolerance:
                break

        values: Dict[ObjectId, Value] = {}
        posteriors: Dict[ObjectId, Dict[Value, float]] = {}
        for obj in dataset.objects:
            domain = dataset.domain(obj)
            scores = {value: float(confidence[claim_index[(obj, value)]]) for value in domain}
            values[obj] = max(domain, key=lambda value: scores[value])
            exp_scores = {value: float(np.exp(score)) for value, score in scores.items()}
            norm = sum(exp_scores.values())
            posteriors[obj] = {value: p / norm for value, p in exp_scores.items()}
        values = self.clamp_training_values(values, train_truth)
        return FusionResult(
            values=values,
            posteriors=posteriors,
            source_accuracies=None,  # SSTF does not estimate accuracies
            method=self.name,
        )
