"""ACCU — Bayesian data fusion (Dong, Berti-Equille, Srivastava, VLDB 2009).

The variant without copying detection, as used in the paper's comparison.
ACCU alternates between:

* **Truth inference**: each value ``d`` of object ``o`` gets a vote count
  ``C(d) = sum over sources claiming d of log(n * A_s / (1 - A_s))`` where
  ``n`` is the number of wrong-value alternatives; the posterior is the
  softmax of vote counts and the estimated truth its argmax.
* **Accuracy update**: a source's accuracy becomes the average posterior
  probability of the values it claims.

Revealed ground truth initializes the accuracies (the usage the paper
adopts, "as suggested in [9]") and clamps those objects' truth during the
iterations.  Convergence is declared when accuracy estimates stabilize.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, SourceId, Value
from .base import Fuser

_EPS = 1e-6


class Accu(Fuser):
    """Iterative Bayesian fusion with source-accuracy feedback.

    Parameters
    ----------
    n_false_values:
        The model's number of incorrect alternatives per object (the
        uniform-error constant ``n`` of the original paper).  ``None``
        derives it per object from the claimed-domain size.
    max_iterations, tolerance:
        Iteration budget and convergence threshold on accuracy changes.
    initial_accuracy:
        Accuracy for sources with no labeled observations (the original
        paper initializes all accuracies to 0.8).
    """

    name = "accu"

    def __init__(
        self,
        n_false_values: Optional[int] = None,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        initial_accuracy: float = 0.8,
    ) -> None:
        self.n_false_values = n_false_values
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.initial_accuracy = initial_accuracy

    def fit_predict(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> FusionResult:
        train_truth = dict(train_truth or {})
        accuracies = self._initial_accuracies(dataset, train_truth)

        posteriors: Dict[ObjectId, Dict[Value, float]] = {}
        iterations_used = 0
        for iteration in range(self.max_iterations):
            iterations_used = iteration + 1
            posteriors = self._infer_truth(dataset, accuracies, train_truth)
            updated = self._update_accuracies(dataset, posteriors)
            delta = max(abs(updated[source] - accuracies[source]) for source in updated)
            accuracies = updated
            if delta < self.tolerance:
                break

        values = {obj: max(dist, key=dist.get) for obj, dist in posteriors.items()}
        values = self.clamp_training_values(values, train_truth)
        return FusionResult(
            values=values,
            posteriors=posteriors,
            source_accuracies=accuracies,
            method=self.name,
            diagnostics={"iterations": iterations_used},
        )

    # ------------------------------------------------------------------
    def _initial_accuracies(
        self, dataset: FusionDataset, truth: Mapping[ObjectId, Value]
    ) -> Dict[SourceId, float]:
        accuracies: Dict[SourceId, float] = {}
        empirical = dataset.empirical_accuracies(truth) if truth else {}
        for source in dataset.sources:
            acc = empirical.get(source, self.initial_accuracy)
            accuracies[source] = float(np.clip(acc, _EPS, 1.0 - _EPS))
        return accuracies

    def _infer_truth(
        self,
        dataset: FusionDataset,
        accuracies: Mapping[SourceId, float],
        truth: Mapping[ObjectId, Value],
    ) -> Dict[ObjectId, Dict[Value, float]]:
        posteriors: Dict[ObjectId, Dict[Value, float]] = {}
        for o_idx, obj in enumerate(dataset.objects):
            domain = dataset.domain(obj)
            if obj in truth:
                posteriors[obj] = {value: 1.0 if value == truth[obj] else 0.0 for value in domain}
                if truth[obj] not in posteriors[obj]:
                    posteriors[obj][truth[obj]] = 1.0
                continue
            n = self.n_false_values or max(len(domain) - 1, 1)
            scores = {value: 0.0 for value in domain}
            for row in dataset.object_observation_rows(o_idx):
                obs = dataset.observations[row]
                acc = float(np.clip(accuracies[obs.source], _EPS, 1.0 - _EPS))
                scores[obs.value] += float(np.log(n * acc / (1.0 - acc)))
            peak = max(scores.values())
            unnorm = {value: np.exp(score - peak) for value, score in scores.items()}
            norm = sum(unnorm.values())
            posteriors[obj] = {value: p / norm for value, p in unnorm.items()}
        return posteriors

    def _update_accuracies(
        self,
        dataset: FusionDataset,
        posteriors: Mapping[ObjectId, Mapping[Value, float]],
    ) -> Dict[SourceId, float]:
        sums: Dict[SourceId, float] = {}
        counts: Dict[SourceId, int] = {}
        for obs in dataset.observations:
            prob = float(posteriors[obs.obj].get(obs.value, 0.0))
            sums[obs.source] = sums.get(obs.source, 0.0) + prob
            counts[obs.source] = counts.get(obs.source, 0) + 1
        return {
            source: float(np.clip(sums.get(source, 0.0) / counts[source], _EPS, 1.0 - _EPS))
            for source in counts
        }
