"""CATD — confidence-aware truth discovery (Li et al., PVLDB 2014).

CATD targets the long tail: sources with few claims get *confidence
intervals* around their reliability instead of point estimates.  A source's
weight is the ratio of a chi-squared upper-quantile to its accumulated
error mass::

    w_s = chi2.ppf(1 - alpha/2, df = n_s) / sum of errors of s

so a small-sample source is damped toward lower weight.  Truth estimation
is a weighted vote; the two steps alternate until the truth assignment
stabilizes.  CATD measures reliability with normalized weights rather than
probabilistic accuracies, so (as in the paper) it is excluded from the
source-accuracy-error comparison.

Revealed ground truth initializes the truth assignment and stays clamped,
matching the paper's usage ("ground truth is used to initialize the source
accuracy estimates, as suggested in [22]").
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from scipy import stats

from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, SourceId, Value
from .base import Fuser

_EPS = 1e-6


class Catd(Fuser):
    """Chi-squared confidence-weighted truth discovery.

    Parameters
    ----------
    alpha:
        Significance level of the chi-squared interval (original paper
        uses 0.05).
    max_iterations:
        Budget of weight/truth alternations.
    error_smoothing:
        Pseudo-error added to every source so perfect agreement with the
        current truth cannot produce an infinite weight.
    """

    name = "catd"

    def __init__(
        self,
        alpha: float = 0.05,
        max_iterations: int = 50,
        error_smoothing: float = 0.5,
    ) -> None:
        self.alpha = alpha
        self.max_iterations = max_iterations
        self.error_smoothing = error_smoothing

    def fit_predict(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> FusionResult:
        train_truth = dict(train_truth or {})
        values = self._initial_truth(dataset, train_truth)

        weights: Dict[SourceId, float] = {}
        iterations_used = 0
        for iteration in range(self.max_iterations):
            iterations_used = iteration + 1
            weights = self._update_weights(dataset, values)
            updated = self._weighted_vote(dataset, weights, train_truth)
            if updated == values:
                values = updated
                break
            values = updated

        max_weight = max(weights.values()) if weights else 1.0
        normalized = {source: w / max_weight for source, w in weights.items()}
        values = self.clamp_training_values(values, train_truth)
        return FusionResult(
            values=values,
            posteriors=None,
            source_accuracies=None,  # CATD weights are not probabilities
            method=self.name,
            diagnostics={
                "iterations": iterations_used,
                "normalized_weights": normalized,
            },
        )

    # ------------------------------------------------------------------
    def _initial_truth(
        self, dataset: FusionDataset, truth: Mapping[ObjectId, Value]
    ) -> Dict[ObjectId, Value]:
        values: Dict[ObjectId, Value] = {}
        for o_idx, obj in enumerate(dataset.objects):
            if obj in truth:
                values[obj] = truth[obj]
                continue
            counts: Dict[Value, int] = {}
            for row in dataset.object_observation_rows(o_idx):
                claimed = dataset.observations[row].value
                counts[claimed] = counts.get(claimed, 0) + 1
            values[obj] = max(dataset.domain(obj), key=lambda value: counts.get(value, 0))
        return values

    def _update_weights(
        self, dataset: FusionDataset, values: Mapping[ObjectId, Value]
    ) -> Dict[SourceId, float]:
        weights: Dict[SourceId, float] = {}
        for source in dataset.sources:
            s_idx = dataset.sources.index(source)
            rows = dataset.source_observation_rows(s_idx)
            n = int(rows.shape[0])
            errors = self.error_smoothing
            for row in rows:
                obs = dataset.observations[row]
                if values.get(obs.obj) != obs.value:
                    errors += 1.0
            quantile = float(stats.chi2.ppf(1.0 - self.alpha / 2.0, df=max(n, 1)))
            weights[source] = quantile / max(errors, _EPS)
        return weights

    def _weighted_vote(
        self,
        dataset: FusionDataset,
        weights: Mapping[SourceId, float],
        truth: Mapping[ObjectId, Value],
    ) -> Dict[ObjectId, Value]:
        values: Dict[ObjectId, Value] = {}
        for o_idx, obj in enumerate(dataset.objects):
            if obj in truth:
                values[obj] = truth[obj]
                continue
            scores: Dict[Value, float] = {value: 0.0 for value in dataset.domain(obj)}
            for row in dataset.object_observation_rows(o_idx):
                obs = dataset.observations[row]
                scores[obs.value] += weights[obs.source]
            values[obj] = max(dataset.domain(obj), key=lambda value: scores[value])
        return values
