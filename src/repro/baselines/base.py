"""Common interface for all data-fusion methods under comparison."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, Value


class Fuser(ABC):
    """A data-fusion method: observations (+ optional labels) in, result out.

    Every method in the paper's evaluation — SLiMFast variants, generative
    baselines (Counts, ACCU) and iterative methods (CATD, SSTF) — is
    exposed through this interface so the experiment harness can sweep them
    uniformly.
    """

    name: str = "fuser"

    @abstractmethod
    def fit_predict(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> FusionResult:
        """Fuse ``dataset`` using ``train_truth`` as revealed labels."""

    # ------------------------------------------------------------------
    @staticmethod
    def clamp_training_values(
        values: Dict[ObjectId, Value], train_truth: Mapping[ObjectId, Value]
    ) -> Dict[ObjectId, Value]:
        """Overwrite estimates with known training labels (all methods may
        use revealed ground truth directly for those objects)."""
        out = dict(values)
        out.update(train_truth)
        return out
