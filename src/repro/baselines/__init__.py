"""Baseline data-fusion methods the paper compares against."""

from .accu import Accu
from .base import Fuser
from .catd import Catd
from .counts import Counts
from .majority import MajorityVote
from .sstf import Sstf
from .truthfinder import TruthFinder

__all__ = [
    "Fuser",
    "MajorityVote",
    "Counts",
    "Accu",
    "Catd",
    "Sstf",
    "TruthFinder",
]
