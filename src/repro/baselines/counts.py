"""Counts — the Naive Bayes baseline (paper Section 5.1, "Methods").

Source accuracies are estimated as the empirical fraction of times the
source agrees with the revealed ground truth (with Laplace smoothing so
sources without labeled observations fall back to a neutral prior).  Truth
inference is then the Naive Bayes posterior: under conditional
independence, a source claiming value ``d`` multiplies the likelihood of
``d`` by ``A_s`` and of every other value by ``(1 - A_s) / (|D_o| - 1)``
(errors spread uniformly over the remaining claimed values).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, SourceId, Value
from .base import Fuser

_EPS = 1e-9


class Counts(Fuser):
    """Naive Bayes fusion with ground-truth-counted source accuracies.

    Parameters
    ----------
    smoothing:
        Laplace pseudo-counts: a source with ``c`` correct out of ``n``
        labeled observations gets ``(c + smoothing) / (n + 2 * smoothing)``.
    prior_accuracy:
        Accuracy used for sources with no labeled observations.
    """

    name = "counts"

    def __init__(self, smoothing: float = 1.0, prior_accuracy: float = 0.5) -> None:
        self.smoothing = smoothing
        self.prior_accuracy = prior_accuracy

    def fit_predict(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> FusionResult:
        train_truth = dict(train_truth or {})
        accuracies = self._count_accuracies(dataset, train_truth)

        values: Dict[ObjectId, Value] = {}
        posteriors: Dict[ObjectId, Dict[Value, float]] = {}
        for o_idx, obj in enumerate(dataset.objects):
            domain = dataset.domain(obj)
            log_like = {value: 0.0 for value in domain}
            n_alternatives = max(len(domain) - 1, 1)
            for row in dataset.object_observation_rows(o_idx):
                obs = dataset.observations[row]
                acc = accuracies[obs.source]
                wrong = max((1.0 - acc) / n_alternatives, _EPS)
                for value in domain:
                    log_like[value] += np.log(max(acc, _EPS) if value == obs.value else wrong)
            peak = max(log_like.values())
            unnorm = {value: np.exp(ll - peak) for value, ll in log_like.items()}
            norm = sum(unnorm.values())
            posteriors[obj] = {value: p / norm for value, p in unnorm.items()}
            values[obj] = max(domain, key=lambda value: (log_like[value]))
        values = self.clamp_training_values(values, train_truth)
        return FusionResult(
            values=values,
            posteriors=posteriors,
            source_accuracies=accuracies,
            method=self.name,
        )

    # ------------------------------------------------------------------
    def _count_accuracies(
        self, dataset: FusionDataset, truth: Mapping[ObjectId, Value]
    ) -> Dict[SourceId, float]:
        correct: Dict[SourceId, float] = {}
        total: Dict[SourceId, float] = {}
        for obs in dataset.observations:
            expected = truth.get(obs.obj)
            if expected is None:
                continue
            total[obs.source] = total.get(obs.source, 0.0) + 1.0
            if obs.value == expected:
                correct[obs.source] = correct.get(obs.source, 0.0) + 1.0
        accuracies: Dict[SourceId, float] = {}
        for source in dataset.sources:
            n = total.get(source, 0.0)
            if n == 0.0:
                accuracies[source] = self.prior_accuracy
            else:
                accuracies[source] = (correct.get(source, 0.0) + self.smoothing) / (
                    n + 2.0 * self.smoothing
                )
        return accuracies
