"""Factor-graph substrate: the DeepDive replacement.

Provides the representation, Gibbs sampler, dataset compiler and
pseudo-likelihood learner that back the paper's compilation/learning/
inference pipeline.  Exact closed-form inference in :mod:`repro.core` is
the fast path; this package exists for fidelity with the paper's
architecture and for models with non-unary factors.
"""

from .compiler import (
    OFFSET_WEIGHT_ID,
    CompiledGraph,
    compile_dataset,
    compile_with_copying,
)
from .gibbs import (
    GibbsResult,
    GibbsSampler,
    UnaryScoreTables,
    compile_unary_score_tables,
)
from .graph import Factor, FactorGraph, GraphError, Variable
from .learning import LearningResult, PseudoLikelihoodLearner

__all__ = [
    "FactorGraph",
    "Factor",
    "Variable",
    "GraphError",
    "GibbsSampler",
    "GibbsResult",
    "UnaryScoreTables",
    "compile_unary_score_tables",
    "CompiledGraph",
    "compile_dataset",
    "compile_with_copying",
    "OFFSET_WEIGHT_ID",
    "PseudoLikelihoodLearner",
    "LearningResult",
]
