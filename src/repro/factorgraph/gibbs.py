"""Gibbs sampling over factor graphs.

The paper performs probabilistic inference "via Gibbs sampling ...
implemented over DeepDive's sampler".  This sampler does the same over our
:class:`~repro.factorgraph.graph.FactorGraph`: iterate over latent
variables in a fixed order, resample each from its full conditional (a
softmax of the local scores), and accumulate marginal counts after an
initial burn-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import numpy as np

from ..optim.numerics import softmax
from .graph import FactorGraph


@dataclass
class GibbsResult:
    """Marginals and the last sampled state of a Gibbs run.

    Attributes
    ----------
    marginals:
        Per-variable dict ``value -> estimated posterior probability``.
    last_state:
        Final assignment of all latent variables.
    n_samples:
        Samples retained after burn-in.
    """

    marginals: Dict[Hashable, Dict[Hashable, float]]
    last_state: Dict[Hashable, Hashable]
    n_samples: int

    def map_assignment(self) -> Dict[Hashable, Hashable]:
        """Most probable value per variable under the marginals."""
        return {
            name: max(dist, key=dist.get) for name, dist in self.marginals.items()
        }


class GibbsSampler:
    """Single-chain Gibbs sampler with burn-in.

    Parameters
    ----------
    n_samples:
        Samples to retain for marginal estimation.
    burn_in:
        Initial sweeps to discard.
    seed:
        RNG seed for reproducibility.
    """

    def __init__(self, n_samples: int = 500, burn_in: int = 100, seed: int = 0) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be positive")
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.seed = seed

    def run(
        self,
        graph: FactorGraph,
        initial_state: Optional[Dict[Hashable, Hashable]] = None,
    ) -> GibbsResult:
        """Sample the latent variables of ``graph``."""
        rng = np.random.default_rng(self.seed)
        latent = graph.latent_variables()
        state: Dict[Hashable, Hashable] = {}
        for variable in latent:
            if initial_state and variable.name in initial_state:
                state[variable.name] = initial_state[variable.name]
            else:
                state[variable.name] = variable.domain[int(rng.integers(variable.cardinality))]

        counts: Dict[Hashable, np.ndarray] = {
            variable.name: np.zeros(variable.cardinality) for variable in latent
        }

        for sweep in range(self.burn_in + self.n_samples):
            for variable in latent:
                scores = graph.local_scores(variable.name, state)
                probs = softmax(scores)
                choice = int(rng.choice(variable.cardinality, p=probs))
                state[variable.name] = variable.domain[choice]
            if sweep >= self.burn_in:
                for variable in latent:
                    value_idx = variable.domain.index(state[variable.name])
                    counts[variable.name][value_idx] += 1.0

        marginals: Dict[Hashable, Dict[Hashable, float]] = {}
        for variable in latent:
            total = counts[variable.name].sum() or 1.0
            marginals[variable.name] = {
                value: float(counts[variable.name][i] / total)
                for i, value in enumerate(variable.domain)
            }
        return GibbsResult(
            marginals=marginals, last_state=dict(state), n_samples=self.n_samples
        )
