"""Gibbs sampling over factor graphs.

The paper performs probabilistic inference "via Gibbs sampling ...
implemented over DeepDive's sampler".  This sampler does the same over our
:class:`~repro.factorgraph.graph.FactorGraph`: iterate over latent
variables in a fixed order, resample each from its full conditional (a
softmax of the local scores), and accumulate marginal counts after an
initial burn-in.

Two backends are available.  ``"reference"`` (default) evaluates every
adjacent factor's Python feature function at every sweep — faithful to the
DeepDive execution model but slow.  ``"vectorized"`` first *compiles* the
graph into per-variable factor-score tables (one flat score vector over all
(variable, value) rows); for graphs whose latent-adjacent factors are all
unary — which is exactly what :mod:`repro.factorgraph.compiler` emits for
SLiMFast — the full conditionals are state-independent, so entire sweeps
collapse into one segmented inverse-CDF draw over the precomputed tables.
``"auto"`` picks vectorized when the graph compiles and falls back to the
reference sweeps otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

import numpy as np

from .._rng import as_generator
from ..optim.numerics import softmax
from ..optim.objectives import segment_softmax
from .graph import FactorGraph, GraphError

GIBBS_BACKENDS = ("reference", "vectorized", "auto")


@dataclass
class GibbsResult:
    """Marginals and the last sampled state of a Gibbs run.

    Attributes
    ----------
    marginals:
        Per-variable dict ``value -> estimated posterior probability``.
    last_state:
        Final assignment of all latent variables.
    n_samples:
        Samples retained after burn-in.
    """

    marginals: Dict[Hashable, Dict[Hashable, float]]
    last_state: Dict[Hashable, Hashable]
    n_samples: int

    def map_assignment(self) -> Dict[Hashable, Hashable]:
        """Most probable value per variable under the marginals."""
        return {name: max(dist, key=dist.get) for name, dist in self.marginals.items()}


@dataclass
class UnaryScoreTables:
    """Per-variable conditional score tables of a unary-factor graph.

    Attributes
    ----------
    names:
        Latent variable names in graph order.
    domains:
        Domain tuple per latent variable.
    offsets:
        CSR offsets into the flattened (variable, value) ``scores`` vector.
    scores:
        Unnormalized log-score of every (variable, value) row.
    """

    names: List[Hashable]
    domains: List[tuple]
    offsets: np.ndarray
    scores: np.ndarray

    @property
    def n_variables(self) -> int:
        return len(self.names)


def compile_unary_score_tables(graph: FactorGraph) -> UnaryScoreTables:
    """Precompute every latent variable's conditional score table.

    Requires all factors adjacent to latent variables to be unary (true for
    the SLiMFast compilation, where every vote/feature/offset factor touches
    one object variable); raises :class:`GraphError` otherwise.
    """
    latent = graph.latent_variables()
    for variable in latent:
        for factor in graph.factors_of(variable.name):
            if len(factor.variables) != 1:
                raise GraphError(
                    "vectorized Gibbs requires unary factors; factor over "
                    f"{factor.variables!r} touches latent {variable.name!r}"
                )
    names = [variable.name for variable in latent]
    domains = [variable.domain for variable in latent]
    cardinalities = np.asarray([len(d) for d in domains], dtype=np.int64)
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(cardinalities, dtype=np.int64)]
    )
    scores = np.empty(int(offsets[-1]), dtype=float)
    empty_assignment: Dict[Hashable, Hashable] = {}
    for i, variable in enumerate(latent):
        scores[offsets[i] : offsets[i + 1]] = graph.local_scores(variable.name, empty_assignment)
    return UnaryScoreTables(names=names, domains=domains, offsets=offsets, scores=scores)


class GibbsSampler:
    """Single-chain Gibbs sampler with burn-in.

    Parameters
    ----------
    n_samples:
        Samples to retain for marginal estimation.
    burn_in:
        Initial sweeps to discard.  (With the vectorized backend the
        conditionals are state-independent, so burn-in sweeps would be
        i.i.d. draws; they are skipped without affecting the sampling
        distribution.)
    seed:
        RNG seed for reproducibility.  The two backends consume randomness
        differently, so per-backend streams differ while targeting the same
        distribution.
    backend:
        ``"reference"`` (default), ``"vectorized"`` or ``"auto"``.
    """

    def __init__(
        self,
        n_samples: int = 500,
        burn_in: int = 100,
        seed: int = 0,
        backend: str = "reference",
    ) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be positive")
        if backend not in GIBBS_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {GIBBS_BACKENDS}")
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.seed = seed
        self.backend = backend

    def run(
        self,
        graph: FactorGraph,
        initial_state: Optional[Dict[Hashable, Hashable]] = None,
    ) -> GibbsResult:
        """Sample the latent variables of ``graph``.

        With the vectorized backend the conditionals are state-independent,
        so ``initial_state`` cannot influence the draws and is ignored
        (``last_state`` is simply the final i.i.d. sweep).  ``"auto"``
        preserves warm-restart semantics by using the reference sweeps
        whenever an ``initial_state`` is supplied.
        """
        if self.backend == "reference" or (self.backend == "auto" and initial_state is not None):
            return self._run_reference(graph, initial_state)
        try:
            tables = compile_unary_score_tables(graph)
        except GraphError:
            if self.backend == "vectorized":
                raise
            # "auto" falls back to the reference sweeps on graphs the
            # table compiler cannot handle (e.g. non-unary factors).
            return self._run_reference(graph, initial_state)
        return self._run_vectorized(tables)

    # ------------------------------------------------------------------
    def _run_vectorized(self, tables: UnaryScoreTables) -> GibbsResult:
        """Sample all variables per sweep from the precomputed tables.

        Each variable's full conditional is a static softmax of its score
        table, so a sweep is one inverse-CDF lookup per variable; all
        ``n_samples`` sweeps batch into a single searchsorted over the
        concatenated per-variable CDFs.
        """
        rng = as_generator(self.seed)
        n_vars = tables.n_variables
        if n_vars == 0:
            return GibbsResult(marginals={}, last_state={}, n_samples=self.n_samples)

        offsets = tables.offsets
        segment_idx = np.repeat(np.arange(n_vars, dtype=np.int64), np.diff(offsets))
        probs = segment_softmax(tables.scores, segment_idx, n_vars)
        cdf = np.cumsum(probs)
        # Exclusive cumulative mass at each variable's first row; each
        # segment spans ~1.0 of the global CDF.
        base = np.concatenate([[0.0], cdf])[offsets[:-1]]

        uniforms = rng.random((self.n_samples, n_vars))
        rows = np.searchsorted(cdf, base[None, :] + uniforms, side="left")
        # Guard against float drift pushing a draw across a segment edge.
        rows = np.clip(rows, offsets[:-1][None, :], (offsets[1:] - 1)[None, :])

        counts = np.bincount(rows.ravel(), minlength=int(offsets[-1]))
        marginals: Dict[Hashable, Dict[Hashable, float]] = {}
        last_state: Dict[Hashable, Hashable] = {}
        for i, name in enumerate(tables.names):
            domain = tables.domains[i]
            start = int(offsets[i])
            marginals[name] = {
                value: float(counts[start + j]) / self.n_samples
                for j, value in enumerate(domain)
            }
            last_state[name] = domain[int(rows[-1, i]) - start]
        return GibbsResult(marginals=marginals, last_state=last_state, n_samples=self.n_samples)

    # ------------------------------------------------------------------
    def _run_reference(
        self,
        graph: FactorGraph,
        initial_state: Optional[Dict[Hashable, Hashable]] = None,
    ) -> GibbsResult:
        """Original per-factor sweep loop (ground truth for the tests)."""
        rng = as_generator(self.seed)
        latent = graph.latent_variables()
        state: Dict[Hashable, Hashable] = {}
        for variable in latent:
            if initial_state and variable.name in initial_state:
                state[variable.name] = initial_state[variable.name]
            else:
                state[variable.name] = variable.domain[int(rng.integers(variable.cardinality))]

        counts: Dict[Hashable, np.ndarray] = {
            variable.name: np.zeros(variable.cardinality) for variable in latent
        }

        for sweep in range(self.burn_in + self.n_samples):
            for variable in latent:
                scores = graph.local_scores(variable.name, state)
                probs = softmax(scores)
                choice = int(rng.choice(variable.cardinality, p=probs))
                state[variable.name] = variable.domain[choice]
            if sweep >= self.burn_in:
                for variable in latent:
                    value_idx = variable.domain.index(state[variable.name])
                    counts[variable.name][value_idx] += 1.0

        marginals: Dict[Hashable, Dict[Hashable, float]] = {}
        for variable in latent:
            total = counts[variable.name].sum() or 1.0
            marginals[variable.name] = {
                value: float(counts[variable.name][i] / total)
                for i, value in enumerate(variable.domain)
            }
        return GibbsResult(marginals=marginals, last_state=dict(state), n_samples=self.n_samples)
