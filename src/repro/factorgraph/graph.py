"""A small factor-graph engine.

The paper compiles SLiMFast's model into a declarative factor-graph
framework (DeepDive) and runs learning and inference over it with a Gibbs
sampler.  This package is our substrate replacement: a minimal but real
factor-graph representation with

* categorical :class:`Variable` nodes (latent or observed/evidence),
* :class:`Factor` nodes whose log-potential is ``weight *
  feature(assignment)``, with weights optionally *tied* across factors
  (SLiMFast ties one weight per source / per domain feature),
* a Gibbs sampler (:mod:`repro.factorgraph.gibbs`) and
* a compiler from :class:`~repro.fusion.dataset.FusionDataset`
  (:mod:`repro.factorgraph.compiler`).

The engine is validated against the closed-form inference of
:mod:`repro.core.inference` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..fusion.types import FusionError


class GraphError(FusionError):
    """Raised for malformed factor graphs."""


@dataclass
class Variable:
    """A categorical random variable.

    Attributes
    ----------
    name:
        Unique identifier.
    domain:
        The variable's possible values (at least one).
    observed:
        Evidence value, or ``None`` for a latent variable.
    """

    name: Hashable
    domain: Tuple[Hashable, ...]
    observed: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if not self.domain:
            raise GraphError(f"variable {self.name!r} has an empty domain")
        if self.observed is not None and self.observed not in self.domain:
            raise GraphError(f"evidence {self.observed!r} outside the domain of {self.name!r}")

    @property
    def cardinality(self) -> int:
        return len(self.domain)


@dataclass
class Factor:
    """A log-linear factor: ``log phi(x) = weight * feature(x)``.

    Attributes
    ----------
    variables:
        Names of the variables this factor touches, in feature-argument
        order.
    feature:
        Function mapping an assignment tuple (one value per variable, in
        ``variables`` order) to a real feature value.
    weight_id:
        Key of the (shared) weight this factor uses.  Factors with equal
        ``weight_id`` are *tied* — they share one learned parameter.
    """

    variables: Tuple[Hashable, ...]
    feature: Callable[[Tuple[Hashable, ...]], float]
    weight_id: Hashable

    def __post_init__(self) -> None:
        if not self.variables:
            raise GraphError("a factor must touch at least one variable")


class FactorGraph:
    """A collection of variables, factors and tied weights."""

    def __init__(self) -> None:
        self._variables: Dict[Hashable, Variable] = {}
        self._factors: List[Factor] = []
        self.weights: Dict[Hashable, float] = {}
        self._adjacency: Dict[Hashable, List[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: Hashable,
        domain: Sequence[Hashable],
        observed: Optional[Hashable] = None,
    ) -> Variable:
        """Add a variable; names must be unique."""
        if name in self._variables:
            raise GraphError(f"duplicate variable {name!r}")
        variable = Variable(name=name, domain=tuple(domain), observed=observed)
        self._variables[name] = variable
        self._adjacency[name] = []
        return variable

    def add_factor(
        self,
        variables: Sequence[Hashable],
        feature: Callable[[Tuple[Hashable, ...]], float],
        weight_id: Hashable,
        initial_weight: float = 0.0,
    ) -> Factor:
        """Add a factor over existing variables with a (shared) weight."""
        for name in variables:
            if name not in self._variables:
                raise GraphError(f"factor references unknown variable {name!r}")
        factor = Factor(variables=tuple(variables), feature=feature, weight_id=weight_id)
        index = len(self._factors)
        self._factors.append(factor)
        self.weights.setdefault(weight_id, initial_weight)
        for name in variables:
            self._adjacency[name].append(index)
        return factor

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def variable(self, name: Hashable) -> Variable:
        return self._variables[name]

    @property
    def variables(self) -> List[Variable]:
        return list(self._variables.values())

    @property
    def factors(self) -> List[Factor]:
        return list(self._factors)

    def factors_of(self, name: Hashable) -> List[Factor]:
        """Factors adjacent to a variable."""
        return [self._factors[i] for i in self._adjacency[name]]

    def latent_variables(self) -> List[Variable]:
        return [v for v in self._variables.values() if v.observed is None]

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def local_scores(self, name: Hashable, assignment: Dict[Hashable, Hashable]) -> np.ndarray:
        """Unnormalized log-scores of each value of ``name`` given the rest.

        Only adjacent factors are evaluated; all other variables are read
        from ``assignment`` (observed variables fall back to their
        evidence).
        """
        variable = self._variables[name]
        scores = np.zeros(variable.cardinality)
        for factor in self.factors_of(name):
            weight = self.weights[factor.weight_id]
            if weight == 0.0:
                continue
            for value_idx, value in enumerate(variable.domain):
                args = tuple(
                    value if other == name else self._resolve(other, assignment)
                    for other in factor.variables
                )
                scores[value_idx] += weight * factor.feature(args)
        return scores

    def assignment_log_score(self, assignment: Dict[Hashable, Hashable]) -> float:
        """Total unnormalized log-score of a full assignment."""
        total = 0.0
        for factor in self._factors:
            args = tuple(self._resolve(name, assignment) for name in factor.variables)
            total += self.weights[factor.weight_id] * factor.feature(args)
        return total

    def _resolve(self, name: Hashable, assignment: Dict[Hashable, Hashable]) -> Hashable:
        variable = self._variables[name]
        if variable.observed is not None:
            return variable.observed
        if name not in assignment:
            raise GraphError(f"latent variable {name!r} missing from assignment")
        return assignment[name]
