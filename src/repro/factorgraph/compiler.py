"""Compiler from fusion datasets to factor graphs (paper "Compilation").

SLiMFast's model compiles into a factor graph with:

* one categorical variable ``("T", obj)`` per object, observed when the
  object's true value is given as ground truth (evidence);
* per observation ``(o, s)`` one indicator factor ``1[T_o = v_{o,s}]`` tied
  to the source-indicator weight ``("src", s)``;
* per observation and active domain feature ``k`` (``f_{s,k} = 1``) one
  indicator factor tied to the feature weight ``("feat", k)``;
* one constant-weight offset factor per observation carrying the
  multi-valued domain correction ``log(|D_o| - 1)`` (zero for binary
  objects), mirroring :mod:`repro.core.inference`.

The tied weights make the graph exactly equivalent to Equation 4, which the
test suite verifies against the closed-form posterior.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from ..core.model import AccuracyModel
from ..fusion.dataset import FusionDataset
from ..fusion.features import FeatureSpace, build_design_matrix
from ..fusion.types import ObjectId, Value
from .graph import FactorGraph

OFFSET_WEIGHT_ID = "__offset__"


def _indicator(target: Value):
    """Feature function: 1 when the (single) argument equals ``target``."""

    def feature(args: Tuple[Hashable, ...]) -> float:
        return 1.0 if args[0] == target else 0.0

    return feature


def _scaled_indicator(target: Value, scale: float):
    def feature(args: Tuple[Hashable, ...]) -> float:
        return scale if args[0] == target else 0.0

    return feature


class CompiledGraph:
    """A compiled factor graph plus its weight bookkeeping."""

    def __init__(
        self,
        graph: FactorGraph,
        dataset: FusionDataset,
        design: np.ndarray,
        feature_space: Optional[FeatureSpace],
    ) -> None:
        self.graph = graph
        self.dataset = dataset
        self.design = design
        self.feature_space = feature_space

    def variable_name(self, obj: ObjectId) -> Tuple[str, ObjectId]:
        return ("T", obj)

    def set_weights_from_model(self, model: AccuracyModel) -> None:
        """Copy an :class:`AccuracyModel`'s parameters into the tied weights."""
        for i, source in enumerate(self.dataset.sources):
            self.graph.weights[("src", source)] = float(model.w_sources[i])
        for k in range(self.design.shape[1]):
            self.graph.weights[("feat", k)] = float(model.w_features[k])
        self.graph.weights[OFFSET_WEIGHT_ID] = 1.0

    def learnable_weight_ids(self) -> list:
        """All weight ids except the constant offset."""
        return [wid for wid in self.graph.weights if wid != OFFSET_WEIGHT_ID]


def compile_with_copying(
    dataset: FusionDataset,
    pairs,
    evidence: Optional[Mapping[ObjectId, Value]] = None,
    use_features: bool = False,
    domain_correction: bool = True,
) -> CompiledGraph:
    """Compile the Appendix D extension: copying factors on top of the base model.

    For each candidate :class:`~repro.core.copying.SourcePair` and each
    object where both sources claim the same value, a factor
    ``1[T_o != common value]`` tied to the pair's weight ``("copy", first,
    second)`` is added — the paper's "agree but the inferred value
    differs" feature.  This demonstrates the declarative-extensibility
    claim of Section 3.2: the extension is a handful of extra factors, and
    the model stays log-linear.
    """
    compiled = compile_dataset(
        dataset,
        evidence=evidence,
        use_features=use_features,
        domain_correction=domain_correction,
    )
    graph = compiled.graph

    claims: Dict[Hashable, Dict[ObjectId, Value]] = {}
    for obs in dataset.observations:
        claims.setdefault(obs.source, {})[obs.obj] = obs.value

    def not_equal(target: Value):
        def feature(args: Tuple[Hashable, ...]) -> float:
            return 1.0 if args[0] != target else 0.0

        return feature

    for pair in pairs:
        weight_id = ("copy", pair.first, pair.second)
        claims_a = claims.get(pair.first, {})
        claims_b = claims.get(pair.second, {})
        for obj in claims_a.keys() & claims_b.keys():
            if claims_a[obj] != claims_b[obj]:
                continue
            graph.add_factor([("T", obj)], not_equal(claims_a[obj]), weight_id=weight_id)
    return compiled


def compile_dataset(
    dataset: FusionDataset,
    evidence: Optional[Mapping[ObjectId, Value]] = None,
    use_features: bool = True,
    domain_correction: bool = True,
) -> CompiledGraph:
    """Compile ``dataset`` into a factor graph.

    ``evidence`` objects become observed variables (the semi-supervised
    clamping of Section 3.2).
    """
    evidence = dict(evidence or {})
    design, space = build_design_matrix(dataset, use_features=use_features)

    graph = FactorGraph()
    for obj in dataset.objects:
        domain = dataset.domain(obj)
        observed = evidence.get(obj)
        if observed is not None and observed not in domain:
            # Evidence for a value no source claimed: extend the domain so
            # the variable can be clamped (single-truth semantics normally
            # prevent this, but simulated splits may hit it).
            domain = list(domain) + [observed]
        graph.add_variable(("T", obj), domain, observed=observed)

    graph.weights[OFFSET_WEIGHT_ID] = 1.0
    for obs in dataset.observations:
        var = ("T", obs.obj)
        s_idx = dataset.sources.index(obs.source)
        graph.add_factor([var], _indicator(obs.value), weight_id=("src", obs.source))
        for k in np.nonzero(design[s_idx])[0]:
            graph.add_factor([var], _indicator(obs.value), weight_id=("feat", int(k)))
        if domain_correction:
            n_alternatives = max(len(dataset.domain(obs.obj)) - 1, 1)
            offset = float(np.log(n_alternatives))
            if offset != 0.0:
                graph.add_factor(
                    [var],
                    _scaled_indicator(obs.value, offset),
                    weight_id=OFFSET_WEIGHT_ID,
                    initial_weight=1.0,
                )
    return CompiledGraph(graph, dataset, design, space if use_features else None)
