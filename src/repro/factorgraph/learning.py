"""Weight learning over factor graphs by pseudo-likelihood SGD.

DeepDive learns factor weights with SGD over the (pseudo-)likelihood of
evidence variables; this module does the same for our engine.  For each
evidence variable ``v`` the pseudo-likelihood term is
``log P(v = observed | rest)`` with the local conditional given by the
adjacent factors; its gradient with respect to a tied weight ``w`` is::

    feature(observed assignment) - E_{local conditional}[feature]

summed over the factors adjacent to ``v`` that carry ``w``.  For SLiMFast's
base model every factor is unary, so the pseudo-likelihood coincides with
the exact conditional likelihood of Equation 4 — the tests exploit that to
validate this learner against the closed-form ERM fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

import numpy as np

from .._rng import as_generator
from ..optim.numerics import softmax
from .graph import FactorGraph, Variable


@dataclass
class LearningResult:
    """Outcome of a pseudo-likelihood SGD run."""

    weights: Dict[Hashable, float]
    n_epochs: int
    final_objective: float


class PseudoLikelihoodLearner:
    """SGD over the pseudo-likelihood of a factor graph's evidence.

    Parameters
    ----------
    learning_rate:
        AdaGrad base step size.
    epochs:
        Passes over the evidence variables.
    l2:
        Ridge penalty per learnable weight (sum-space).
    seed:
        Shuffling seed.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 30,
        l2: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed

    def fit(
        self,
        graph: FactorGraph,
        learnable_ids: Optional[List[Hashable]] = None,
    ) -> LearningResult:
        """Learn the tied weights of ``graph`` in place.

        Only evidence (observed) variables contribute; ``learnable_ids``
        restricts which weights move (e.g. to keep offset weights fixed).
        """
        evidence = [v for v in graph.variables if v.observed is not None]
        if not evidence:
            raise ValueError("pseudo-likelihood learning requires evidence variables")
        learnable = (set(learnable_ids) if learnable_ids is not None else set(graph.weights.keys()))

        rng = as_generator(self.seed)
        grad_sq: Dict[Hashable, float] = {wid: 0.0 for wid in learnable}
        n_evidence = len(evidence)

        objective = 0.0
        for _epoch in range(self.epochs):
            order = rng.permutation(n_evidence)
            objective = 0.0
            for idx in order:
                variable = evidence[int(idx)]
                objective += self._update_one(graph, variable, learnable, grad_sq)
        return LearningResult(
            weights=dict(graph.weights),
            n_epochs=self.epochs,
            final_objective=objective / n_evidence,
        )

    # ------------------------------------------------------------------
    def _update_one(
        self,
        graph: FactorGraph,
        variable: Variable,
        learnable: set,
        grad_sq: Dict[Hashable, float],
    ) -> float:
        """One SGD step on one evidence variable; returns its log-loss."""
        scores = graph.local_scores(variable.name, {})
        probs = softmax(scores)
        observed_idx = variable.domain.index(variable.observed)
        log_loss = -float(np.log(max(probs[observed_idx], 1e-12)))

        # Gradient of -log P(observed | rest) w.r.t. each adjacent weight.
        grads: Dict[Hashable, float] = {}
        for factor in graph.factors_of(variable.name):
            wid = factor.weight_id
            if wid not in learnable:
                continue
            feat_observed = factor.feature((variable.observed,))
            feat_expected = sum(
                probs[i] * factor.feature((value,))
                for i, value in enumerate(variable.domain)
            )
            grads[wid] = grads.get(wid, 0.0) + (feat_expected - feat_observed)

        for wid, grad in grads.items():
            grad += self.l2 * graph.weights[wid] / max(len(grad_sq), 1)
            grad_sq[wid] += grad * grad
            step = self.learning_rate / (np.sqrt(grad_sq[wid]) + 1e-8)
            graph.weights[wid] -= step * grad
        return log_loss
