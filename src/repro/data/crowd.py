"""Crowd dataset simulator — CrowdFlower "weather sentiment" (Table 1).

The original task asks 20 crowd workers per tweet to classify the tweet's
weather sentiment into four classes (positive / negative / neutral / not
weather related); 102 workers, 992 tweets, 19,840 judgements, average
worker accuracy ≈ 0.54.  The paper stresses that crowd workers are
genuinely *conditionally independent* — which is why the generative ACCU
baseline is competitive on this dataset — and that the **labor channel** a
worker was hired through predicts their accuracy (Figure 9).

Mechanisms matched here:

* 102 workers, 992 4-valued objects, exactly 20 judgements per object;
* independent workers, avg accuracy 0.54, confusion biased toward
  "neutral" (plausible human error mode);
* features: labor ``channel`` (strongly informative — some channels host
  careless workers), ``country`` (mildly informative), ``city``
  (uninformative), and ``coverage`` (fraction of tweets judged,
  uninformative), reproducing the Figure 9 lasso-path insight.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.types import Observation
from .simulators import (
    SeedLike,
    as_generator,
    draw_claims,
    ensure_truth_claimed,
    feature_driven_accuracies,
    panel_pairs,
)

SENTIMENTS = ["positive", "negative", "neutral", "not_weather"]

#: Labor channels with their accuracy effect (log-odds).
CHANNELS: Dict[str, float] = {
    "clixsense": -0.9,
    "instagc": -0.5,
    "neodev": 0.1,
    "prodege": 0.3,
    "elite": 0.8,
}

COUNTRIES: Dict[str, float] = {
    "USA": 0.3,
    "GBR": 0.2,
    "IND": -0.1,
    "VNM": -0.4,
    "PHL": -0.2,
}

CITIES = ["springfield", "riverton", "fairview", "kingsport", "lakeshore", "midvale"]


def generate_crowd(
    n_workers: int = 102,
    n_objects: int = 992,
    panel_size: int = 20,
    avg_accuracy: float = 0.54,
    neutral_bias: float = 0.5,
    seed: SeedLike = 0,
) -> FusionDataset:
    """Generate the simulated Crowd dataset.

    ``neutral_bias`` is the probability that an erroneous judgement lands
    on "neutral" (when it is not the truth) rather than a uniform wrong
    class.
    """
    rng = as_generator(seed)

    channel_names = list(CHANNELS)
    worker_channel = [
        channel_names[int(rng.integers(len(channel_names)))] for _ in range(n_workers)
    ]
    country_names = list(COUNTRIES)
    worker_country = [
        country_names[int(rng.integers(len(country_names)))] for _ in range(n_workers)
    ]
    worker_city = [CITIES[int(rng.integers(len(CITIES)))] for _ in range(n_workers)]

    logits = np.asarray(
        [CHANNELS[worker_channel[i]] + COUNTRIES[worker_country[i]] for i in range(n_workers)]
    )
    accuracies = feature_driven_accuracies(logits, avg_accuracy, rng, noise_scale=0.25)

    true_values: List[str] = [
        SENTIMENTS[int(rng.integers(len(SENTIMENTS)))] for _ in range(n_objects)
    ]

    def wrong_value(generator: np.random.Generator, obj: int) -> str:
        truth = true_values[obj]
        if truth != "neutral" and generator.random() < neutral_bias:
            return "neutral"
        alternatives = [s for s in SENTIMENTS if s != truth]
        return alternatives[int(generator.integers(len(alternatives)))]

    pairs = panel_pairs(rng, n_workers, n_objects, panel_size)
    claims = draw_claims(rng, accuracies, pairs, true_values, wrong_value)
    ensure_truth_claimed(rng, claims, true_values, n_objects)

    worker_ids = [f"worker-{i}" for i in range(n_workers)]
    object_ids = [f"tweet-{obj}" for obj in range(n_objects)]
    observations = [
        Observation(worker_ids[source], object_ids[obj], value)
        for (source, obj), value in sorted(claims.items())
    ]
    ground_truth = {object_ids[obj]: true_values[obj] for obj in range(n_objects)}

    # Coverage: fraction of tweets each worker judged, bucketed to one
    # decimal exactly like the paper's "coverage=0.2" style features.
    counts = np.zeros(n_workers)
    for (source, _obj) in claims:
        counts[source] += 1
    coverage = np.round(counts / n_objects, 1)

    source_features = {
        worker_ids[i]: {
            "channel": worker_channel[i],
            "country": worker_country[i],
            "city": worker_city[i],
            "coverage": float(coverage[i]),
        }
        for i in range(n_workers)
    }
    true_accuracy_map = {worker_ids[i]: float(accuracies[i]) for i in range(n_workers)}
    return FusionDataset(
        observations,
        ground_truth=ground_truth,
        source_features=source_features,
        true_accuracies=true_accuracy_map,
        name="crowd-sim",
    )
