"""Shared machinery for the paper-dataset simulators.

The paper evaluates on four proprietary/non-redistributable datasets
(Stocks, Demonstrations, Crowd, Genomics).  Each simulator in this package
generates a synthetic dataset matched to the Table 1 statistics *and* to the
mechanism the paper identifies as driving that dataset's results (e.g.
correlated news sources for Demonstrations, feature-dominated accuracy for
Genomics).  See DESIGN.md section 3 for the substitution rationale.

This module holds the pieces all simulators share: feature-driven accuracy
sampling and observation-noise models.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..optim.numerics import logit, sigmoid

#: Anything the simulators accept as a randomness source: an int seed, a
#: ready-made :class:`numpy.random.Generator`, a ``SeedSequence``, or
#: ``None`` (OS entropy — not reproducible, use only interactively).
SeedLike = Union[int, np.integer, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Normalize a seed-like argument into a :class:`numpy.random.Generator`.

    Every generator in :mod:`repro.data` routes its ``seed`` argument
    through here, so callers can pass either an int seed *or* an existing
    ``Generator`` (e.g. a stream split off a shared ``SeedSequence``).
    Passing a ``Generator`` hands over its live state: the simulator
    advances it, so two calls with the same generator object produce
    different (but seed-deterministic) datasets.

    Reproducibility across process boundaries: an int seed is hashed by
    ``numpy``'s ``SeedSequence`` into the PCG64 state deterministically,
    with no dependence on process start method — the same seed produces
    the same dataset in the parent, in a ``fork`` worker, and in a
    ``spawn`` worker (pinned in ``tests/data/test_simulators.py``).

    Legacy ``numpy.random.RandomState`` objects are rejected: their
    sampling algorithms differ from ``Generator``'s, so accepting them
    would silently break the cross-process determinism contract.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.RandomState):
        raise TypeError(
            "legacy numpy.random.RandomState is not supported; pass an int "
            "seed or a numpy.random.Generator (np.random.default_rng(seed))"
        )
    if seed is None or isinstance(seed, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be an int, numpy.random.Generator, SeedSequence or None, "
        f"got {type(seed).__name__}"
    )


def spawn_generators(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Split ``n`` independent child generators off one seed.

    Children are derived through ``SeedSequence.spawn``, so parallel
    workers (fork or spawn) can each own a statistically independent
    stream while the whole ensemble stays reproducible from one seed.
    A live ``Generator`` is split through its own bit generator's seed
    sequence when available.
    """
    if isinstance(seed, np.random.Generator):
        sequence = getattr(seed.bit_generator, "seed_seq", None)
        if sequence is None:  # pragma: no cover - exotic bit generators
            sequence = np.random.SeedSequence(int(seed.integers(2**63)))
    elif isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


def feature_driven_accuracies(
    logits: np.ndarray,
    target_mean: float,
    rng: np.random.Generator,
    noise_scale: float = 0.3,
    clip: Tuple[float, float] = (0.02, 0.98),
) -> np.ndarray:
    """Turn per-source log-odds contributions into accuracies.

    The feature contributions are centered, a base log-odds matching
    ``target_mean`` is added plus idiosyncratic noise, and the result is
    squashed and re-centered so the empirical mean lands on ``target_mean``.
    """
    centered = logits - float(np.mean(logits))
    base = float(logit(target_mean))
    noise = rng.normal(scale=noise_scale, size=logits.shape[0])
    accuracies = sigmoid(base + centered + noise)
    accuracies = np.clip(accuracies, *clip)
    accuracies = accuracies + (target_mean - float(np.mean(accuracies)))
    return np.clip(accuracies, *clip)


def quantile_levels(values: np.ndarray, n_levels: int, prefix: str = "Q") -> List[str]:
    """Discretize numeric values into ``n_levels`` quantile labels.

    Simulators pre-discretize their numeric metadata (the paper does the
    same with Alexa statistics), so Table 1's "# Feature Values" is a
    controlled quantity.
    """
    edges = np.quantile(values, np.linspace(0, 1, n_levels + 1)[1:-1])
    bins = np.searchsorted(edges, values, side="right")
    return [f"{prefix}{int(b) + 1}" for b in bins]


def draw_claims(
    rng: np.random.Generator,
    accuracies: np.ndarray,
    pairs: Sequence[Tuple[int, int]],
    true_values: Sequence[object],
    wrong_value: Callable[[np.random.Generator, int], object],
) -> Dict[Tuple[int, int], object]:
    """Sample a claim per (source, object) pair.

    ``wrong_value(rng, obj)`` supplies an incorrect value for the object
    when the source errs; correctness is Bernoulli(``accuracies[source]``).
    """
    claims: Dict[Tuple[int, int], object] = {}
    for source, obj in pairs:
        if rng.random() < accuracies[source]:
            claims[(source, obj)] = true_values[obj]
        else:
            claims[(source, obj)] = wrong_value(rng, obj)
    return claims


def ensure_truth_claimed(
    rng: np.random.Generator,
    claims: Dict[Tuple[int, int], object],
    true_values: Sequence[object],
    n_objects: int,
) -> None:
    """Enforce single-truth semantics in place.

    Any object whose true value no source claims gets one randomly chosen
    observer flipped to the truth (the paper's datasets satisfy "at least
    one source provides the correct value" by construction).
    """
    holders: Dict[int, List[int]] = {}
    has_truth = [False] * n_objects
    for (source, obj), value in claims.items():
        holders.setdefault(obj, []).append(source)
        if value == true_values[obj]:
            has_truth[obj] = True
    for obj in range(n_objects):
        if has_truth[obj] or obj not in holders:
            continue
        lucky = holders[obj][int(rng.integers(len(holders[obj])))]
        claims[(lucky, obj)] = true_values[obj]


def bernoulli_pairs(
    rng: np.random.Generator, n_sources: int, n_objects: int, density: float
) -> List[Tuple[int, int]]:
    """All (source, object) pairs selected i.i.d. with probability ``density``."""
    mask = rng.random((n_sources, n_objects)) < density
    sources, objects = np.nonzero(mask)
    return list(zip(sources.tolist(), objects.tolist()))


def panel_pairs(
    rng: np.random.Generator, n_sources: int, n_objects: int, panel_size: int
) -> List[Tuple[int, int]]:
    """Each object observed by a uniform random panel of ``panel_size`` sources.

    Used by the Crowd simulator (every tweet is labeled by exactly 20
    workers in the original dataset).
    """
    pairs: List[Tuple[int, int]] = []
    for obj in range(n_objects):
        panel = rng.choice(n_sources, size=min(panel_size, n_sources), replace=False)
        pairs.extend((int(source), obj) for source in panel)
    return pairs
