"""Shared machinery for the paper-dataset simulators.

The paper evaluates on four proprietary/non-redistributable datasets
(Stocks, Demonstrations, Crowd, Genomics).  Each simulator in this package
generates a synthetic dataset matched to the Table 1 statistics *and* to the
mechanism the paper identifies as driving that dataset's results (e.g.
correlated news sources for Demonstrations, feature-dominated accuracy for
Genomics).  See DESIGN.md section 3 for the substitution rationale.

This module holds the pieces all simulators share: feature-driven accuracy
sampling and observation-noise models.  The seed-normalization helpers
(:data:`SeedLike`, :func:`as_generator`, :func:`spawn_generators`) live in
the leaf module :mod:`repro._rng` and are re-exported here unchanged —
this import path is the stable public one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from .._rng import SeedLike, as_generator, spawn_generators
from ..optim.numerics import logit, sigmoid

__all__ = [
    "SeedLike",
    "as_generator",
    "spawn_generators",
    "feature_driven_accuracies",
    "quantile_levels",
    "draw_claims",
    "ensure_truth_claimed",
    "bernoulli_pairs",
    "panel_pairs",
]


def feature_driven_accuracies(
    logits: np.ndarray,
    target_mean: float,
    rng: np.random.Generator,
    noise_scale: float = 0.3,
    clip: Tuple[float, float] = (0.02, 0.98),
) -> np.ndarray:
    """Turn per-source log-odds contributions into accuracies.

    The feature contributions are centered, a base log-odds matching
    ``target_mean`` is added plus idiosyncratic noise, and the result is
    squashed and re-centered so the empirical mean lands on ``target_mean``.
    """
    centered = logits - float(np.mean(logits))
    base = float(logit(target_mean))
    noise = rng.normal(scale=noise_scale, size=logits.shape[0])
    accuracies = sigmoid(base + centered + noise)
    accuracies = np.clip(accuracies, *clip)
    accuracies = accuracies + (target_mean - float(np.mean(accuracies)))
    return np.clip(accuracies, *clip)


def quantile_levels(values: np.ndarray, n_levels: int, prefix: str = "Q") -> List[str]:
    """Discretize numeric values into ``n_levels`` quantile labels.

    Simulators pre-discretize their numeric metadata (the paper does the
    same with Alexa statistics), so Table 1's "# Feature Values" is a
    controlled quantity.
    """
    edges = np.quantile(values, np.linspace(0, 1, n_levels + 1)[1:-1])
    bins = np.searchsorted(edges, values, side="right")
    return [f"{prefix}{int(b) + 1}" for b in bins]


def draw_claims(
    rng: np.random.Generator,
    accuracies: np.ndarray,
    pairs: Sequence[Tuple[int, int]],
    true_values: Sequence[object],
    wrong_value: Callable[[np.random.Generator, int], object],
) -> Dict[Tuple[int, int], object]:
    """Sample a claim per (source, object) pair.

    ``wrong_value(rng, obj)`` supplies an incorrect value for the object
    when the source errs; correctness is Bernoulli(``accuracies[source]``).
    """
    claims: Dict[Tuple[int, int], object] = {}
    for source, obj in pairs:
        if rng.random() < accuracies[source]:
            claims[(source, obj)] = true_values[obj]
        else:
            claims[(source, obj)] = wrong_value(rng, obj)
    return claims


def ensure_truth_claimed(
    rng: np.random.Generator,
    claims: Dict[Tuple[int, int], object],
    true_values: Sequence[object],
    n_objects: int,
) -> None:
    """Enforce single-truth semantics in place.

    Any object whose true value no source claims gets one randomly chosen
    observer flipped to the truth (the paper's datasets satisfy "at least
    one source provides the correct value" by construction).
    """
    holders: Dict[int, List[int]] = {}
    has_truth = [False] * n_objects
    for (source, obj), value in claims.items():
        holders.setdefault(obj, []).append(source)
        if value == true_values[obj]:
            has_truth[obj] = True
    for obj in range(n_objects):
        if has_truth[obj] or obj not in holders:
            continue
        lucky = holders[obj][int(rng.integers(len(holders[obj])))]
        claims[(lucky, obj)] = true_values[obj]


def bernoulli_pairs(
    rng: np.random.Generator, n_sources: int, n_objects: int, density: float
) -> List[Tuple[int, int]]:
    """All (source, object) pairs selected i.i.d. with probability ``density``."""
    mask = rng.random((n_sources, n_objects)) < density
    sources, objects = np.nonzero(mask)
    return list(zip(sources.tolist(), objects.tolist()))


def panel_pairs(
    rng: np.random.Generator, n_sources: int, n_objects: int, panel_size: int
) -> List[Tuple[int, int]]:
    """Each object observed by a uniform random panel of ``panel_size`` sources.

    Used by the Crowd simulator (every tweet is labeled by exactly 20
    workers in the original dataset).
    """
    pairs: List[Tuple[int, int]] = []
    for obj in range(n_objects):
        panel = rng.choice(n_sources, size=min(panel_size, n_sources), replace=False)
        pairs.extend((int(source), obj) for source in panel)
    return pairs
