"""Workload generators: synthetic instances and paper-dataset simulators."""

from .crowd import generate_crowd
from .demos import generate_demos
from .genomics import generate_genomics
from .io import load_dataset, save_dataset
from .stocks import generate_stocks
from .synthetic import SyntheticConfig, SyntheticInstance, generate

__all__ = [
    "SyntheticConfig",
    "SyntheticInstance",
    "generate",
    "generate_stocks",
    "generate_demos",
    "generate_crowd",
    "generate_genomics",
    "load_dataset",
    "save_dataset",
]
