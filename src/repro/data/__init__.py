"""Workload generators: synthetic instances, paper-dataset simulators, and
timed adversarial/drifting/correlated scenario streams."""

from .crowd import generate_crowd
from .demos import generate_demos
from .genomics import generate_genomics
from .io import load_dataset, save_dataset
from .scenarios import (
    DriftSchedule,
    Scenario,
    ScenarioStep,
    copier_clique_scenario,
    default_drift_schedules,
    drift_scenario,
    open_world_scenario,
)
from .simulators import SeedLike, as_generator, spawn_generators
from .stocks import generate_stocks
from .synthetic import SyntheticConfig, SyntheticInstance, generate

__all__ = [
    "SyntheticConfig",
    "SyntheticInstance",
    "generate",
    "generate_stocks",
    "generate_demos",
    "generate_crowd",
    "generate_genomics",
    "load_dataset",
    "save_dataset",
    "SeedLike",
    "as_generator",
    "spawn_generators",
    "DriftSchedule",
    "Scenario",
    "ScenarioStep",
    "default_drift_schedules",
    "drift_scenario",
    "copier_clique_scenario",
    "open_world_scenario",
]
