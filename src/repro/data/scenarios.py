"""Adversarial, drifting, and correlated source scenarios.

The paper's evaluation (and the simulators in this package) assumes
*static* source reliabilities.  A production fusion service sees none of
that: sources drift (a feed degrades after a schema change), collude
(copier cliques replicate a leader's mistakes), and the world itself is
open (new objects and new candidate values keep arriving).  This module
generates *timed* workloads — streams of observation batches with a
ground-truth reveal schedule — that stress exactly those regimes:

* :func:`drift_scenario` — per-source accuracy follows a
  :class:`DriftSchedule` (step change, linear ramp, sinusoidal seasonality
  or constant), so flat Beta-count trust goes stale while decayed /
  windowed trust (``StreamingFuser(trust_decay=DecayConfig(...))``) and
  periodic ``refit_every`` re-anchoring can track the new regime;
* :func:`copier_clique_scenario` — coordinated cliques of copiers
  replicate a low-accuracy leader's claims (mistakes included) at a
  configurable copy rate, recreating the correlated-error structure the
  copying extension (:mod:`repro.core.copying`) exists to detect;
* :func:`open_world_scenario` — the object universe and the per-object
  candidate domains both *grow during streaming*, exercising the
  incremental encoding's domain-growth paths and open-world abstention.

Every generator accepts ``seed`` as an int or a live
:class:`numpy.random.Generator` (see
:func:`repro.data.simulators.as_generator`) and is deterministic across
process boundaries for int seeds; determinism is pinned in
``tests/scenarios/``.  Replay a scenario with :meth:`Scenario.replay`, or
drive the full figure-style comparison (flat vs decayed vs re-anchored
streaming vs batch EM vs majority) with
:func:`repro.experiments.harness.scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.types import DatasetError, ObjectId, Observation, SourceId, Value
from .simulators import SeedLike, as_generator

_ACCURACY_CLIP = (0.02, 0.98)

#: Drift shapes understood by :class:`DriftSchedule`.
DRIFT_KINDS = ("constant", "step", "ramp", "sin")


@dataclass(frozen=True)
class DriftSchedule:
    """Accuracy of one source as a function of stream time ``t in [0, 1]``.

    Attributes
    ----------
    kind:
        ``"constant"`` (always ``start``), ``"step"`` (``start`` before
        ``at``, ``end`` from ``at`` on), ``"ramp"`` (linear from ``start``
        at ``t=0`` to ``end`` at ``t=1``) or ``"sin"`` (``start`` plus a
        sinusoid of the given ``amplitude`` completing ``cycles`` full
        oscillations over the stream).
    start, end:
        Accuracy endpoints; ``end`` defaults to ``start``.
    at:
        Step position as a fraction of the stream (``kind="step"`` only).
    cycles, amplitude:
        Seasonality parameters (``kind="sin"`` only).

    Values are clipped into ``(0.02, 0.98)`` so degenerate all-right /
    all-wrong sources cannot occur.
    """

    kind: str = "constant"
    start: float = 0.8
    end: Optional[float] = None
    at: float = 0.5
    cycles: float = 1.0
    amplitude: float = 0.2

    def __post_init__(self) -> None:
        if self.kind not in DRIFT_KINDS:
            raise ValueError(f"unknown drift kind {self.kind!r}; expected one of {DRIFT_KINDS}")
        for label, value in (("start", self.start), ("end", self.end)):
            if value is not None and not 0.0 < value < 1.0:
                raise ValueError(f"{label} accuracy must be in (0, 1), got {value}")
        if not 0.0 <= self.at <= 1.0:
            raise ValueError("step position `at` must be in [0, 1]")

    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, accuracy: float) -> "DriftSchedule":
        """A source that never drifts."""
        return cls(kind="constant", start=accuracy)

    @classmethod
    def step(cls, start: float, end: float, at: float = 0.5) -> "DriftSchedule":
        """An abrupt regime change at stream fraction ``at``."""
        return cls(kind="step", start=start, end=end, at=at)

    @classmethod
    def ramp(cls, start: float, end: float) -> "DriftSchedule":
        """A linear drift from ``start`` to ``end`` over the stream."""
        return cls(kind="ramp", start=start, end=end)

    @classmethod
    def sine(cls, center: float, amplitude: float, cycles: float = 1.0) -> "DriftSchedule":
        """Seasonal accuracy oscillating around ``center``."""
        return cls(kind="sin", start=center, amplitude=amplitude, cycles=cycles)

    # ------------------------------------------------------------------
    def accuracy(self, t: float) -> float:
        """True accuracy at stream fraction ``t`` (clipped into (0.02, 0.98))."""
        end = self.start if self.end is None else self.end
        if self.kind == "constant":
            value = self.start
        elif self.kind == "step":
            value = self.start if t < self.at else end
        elif self.kind == "ramp":
            value = self.start + (end - self.start) * t
        else:  # sin
            value = self.start + self.amplitude * float(np.sin(2.0 * np.pi * self.cycles * t))
        return float(np.clip(value, *_ACCURACY_CLIP))


@dataclass
class ScenarioStep:
    """One time step of a scenario stream.

    ``observations`` is the batch ingested at this step; ``reveal`` maps
    objects whose ground truth becomes known *after* the batch is
    observed (delayed supervision, the feedback that drives streaming
    trust updates).
    """

    index: int
    time: float
    observations: List[Observation]
    reveal: Dict[ObjectId, Value] = field(default_factory=dict)


@dataclass
class Scenario:
    """A timed fusion workload: observation batches plus latent state.

    Attributes
    ----------
    name:
        Scenario label (also the exported dataset's name).
    steps:
        The stream, one :class:`ScenarioStep` per time step.
    truth:
        Full ground truth for every generated object (the *latent* truth;
        only each step's ``reveal`` is fed to streaming methods).
    source_ids:
        All sources, in stable order.
    true_accuracy:
        ``(n_steps, n_sources)`` matrix of each source's true per-claim
        accuracy at each step (copiers carry their *effective* accuracy,
        i.e. including copied claims).
    object_step:
        Step index at which each object was introduced.
    cliques:
        Planted copier cliques, ``[leader, copier, ...]`` per clique
        (empty for scenarios without copying structure).
    """

    name: str
    steps: List[ScenarioStep]
    truth: Dict[ObjectId, Value]
    source_ids: List[SourceId]
    true_accuracy: np.ndarray
    object_step: Dict[ObjectId, int]
    cliques: List[List[SourceId]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def n_sources(self) -> int:
        return len(self.source_ids)

    @property
    def n_observations(self) -> int:
        return sum(len(step.observations) for step in self.steps)

    def observations(self) -> List[Observation]:
        """The full stream, flattened in arrival order."""
        flat: List[Observation] = []
        for step in self.steps:
            flat.extend(step.observations)
        return flat

    def revealed_truth(self) -> Dict[ObjectId, Value]:
        """Union of every step's reveal (the supervision a replay sees)."""
        revealed: Dict[ObjectId, Value] = {}
        for step in self.steps:
            revealed.update(step.reveal)
        return revealed

    def eval_objects(
        self, at_step: Optional[int] = None, window: Optional[int] = None
    ) -> List[ObjectId]:
        """Held-out objects for accuracy scoring.

        Objects introduced in the ``window`` steps ending at ``at_step``
        (inclusive; defaults: last step, full history) whose truth was
        never revealed — the streaming analogue of the harness's test
        split.
        """
        last = self.n_steps - 1 if at_step is None else at_step
        first = 0 if window is None else max(0, last - window + 1)
        revealed = self.revealed_truth()
        return [
            obj
            for obj, step in self.object_step.items()
            if first <= step <= last and obj not in revealed
        ]

    def to_dataset(self) -> FusionDataset:
        """Export the accumulated stream as a batch dataset.

        ``true_accuracies`` carries each source's *time-averaged* true
        accuracy, the quantity a static batch fit can at best recover.
        """
        mean_accuracy = self.true_accuracy.mean(axis=0)
        return FusionDataset(
            self.observations(),
            ground_truth=dict(self.truth),
            true_accuracies={
                source: float(mean_accuracy[i]) for i, source in enumerate(self.source_ids)
            },
            name=self.name,
        )

    def replay(self, fuser, one_by_one: bool = False):
        """Drive a :class:`~repro.extensions.streaming.StreamingFuser`.

        Each step's batch is observed (as one bulk batch, or observation
        by observation when ``one_by_one`` — the mode that is bit-identical
        to the reference backend), then the step's truth reveals are fed.
        Returns the fuser.
        """
        for step in self.steps:
            if step.observations:
                if one_by_one:
                    for observation in step.observations:
                        fuser.observe(observation)
                else:
                    fuser.observe_batch(step.observations)
            for obj, value in step.reveal.items():
                fuser.reveal_truth(obj, value)
        return fuser


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _times(n_steps: int) -> np.ndarray:
    if n_steps < 1:
        raise DatasetError("n_steps must be positive")
    if n_steps == 1:
        return np.zeros(1)
    return np.arange(n_steps) / float(n_steps - 1)


def _claim(rng: np.random.Generator, p_correct: float, domain_size: int) -> str:
    """One claimed value: the truth w.p. ``p_correct``, else a uniform alt."""
    if domain_size < 2:
        raise DatasetError("domain_size must be at least 2")
    if rng.random() < p_correct:
        return "v0"
    return f"v{1 + int(rng.integers(domain_size - 1))}"


def _ensure_observed(
    rng: np.random.Generator, mask: np.ndarray
) -> np.ndarray:
    """Guarantee every object (column) has at least one observer."""
    empty = np.flatnonzero(~mask.any(axis=0))
    for column in empty:
        mask[int(rng.integers(mask.shape[0])), column] = True
    return mask


def _ensure_truth_claimed_step(
    rng: np.random.Generator,
    claims: Dict[Tuple[int, str], str],
    objects: Sequence[str],
) -> None:
    """Flip one claimant per truth-less object to ``"v0"`` (in place)."""
    holders: Dict[str, List[int]] = {}
    has_truth: Dict[str, bool] = {obj: False for obj in objects}
    for (source, obj), value in claims.items():
        holders.setdefault(obj, []).append(source)
        if value == "v0":
            has_truth[obj] = True
    for obj in objects:
        if has_truth[obj] or obj not in holders:
            continue
        observers = holders[obj]
        lucky = observers[int(rng.integers(len(observers)))]
        claims[(lucky, obj)] = "v0"


def _reveal_sample(
    rng: np.random.Generator, objects: Sequence[str], fraction: float
) -> List[str]:
    count = int(round(fraction * len(objects)))
    if count == 0:
        return []
    picked = rng.choice(len(objects), size=min(count, len(objects)), replace=False)
    return [objects[int(i)] for i in sorted(picked)]


def default_drift_schedules(
    n_sources: int,
    stable_accuracy: float = 0.62,
    drift_start: float = 0.9,
    drift_end: float = 0.15,
    at: float = 0.5,
) -> List[DriftSchedule]:
    """The canonical step-drift mix: half trusted-then-broken, half stable.

    The first ``n_sources // 2`` sources start highly accurate and
    collapse at stream fraction ``at`` (the regime change flat Beta
    counts cannot forget); the rest are mediocre but stable.  This is the
    workload the decayed-vs-flat differential pins.
    """
    drifters = n_sources // 2
    return [
        DriftSchedule.step(drift_start, drift_end, at=at)
        if i < drifters
        else DriftSchedule.constant(stable_accuracy)
        for i in range(n_sources)
    ]


# ----------------------------------------------------------------------
# Generator (a): accuracy drift
# ----------------------------------------------------------------------
def drift_scenario(
    n_sources: int = 20,
    objects_per_step: int = 12,
    n_steps: int = 40,
    density: float = 0.6,
    schedules: Optional[Sequence[DriftSchedule]] = None,
    domain_size: int = 2,
    reveal_fraction: float = 0.5,
    ensure_truth_claimed: bool = True,
    name: str = "drift",
    seed: SeedLike = 0,
) -> Scenario:
    """Sources whose accuracy drifts over the stream.

    Each step introduces ``objects_per_step`` fresh objects; every source
    observes each w.p. ``density`` with correctness drawn from its
    :class:`DriftSchedule` at that step's time (default: the step-drift
    mix of :func:`default_drift_schedules`).  A ``reveal_fraction`` of
    each step's objects has its truth revealed right after the batch —
    the delayed supervision that drives streaming trust updates — while
    the rest stay held out for :meth:`Scenario.eval_objects` scoring.
    """
    rng = as_generator(seed)
    if schedules is None:
        schedules = default_drift_schedules(n_sources)
    if len(schedules) != n_sources:
        raise DatasetError(
            f"need one DriftSchedule per source: got {len(schedules)} for {n_sources} sources"
        )
    if not 0.0 < density <= 1.0:
        raise DatasetError("density must be in (0, 1]")
    if not 0.0 <= reveal_fraction <= 1.0:
        raise DatasetError("reveal_fraction must be in [0, 1]")

    times = _times(n_steps)
    source_ids = [f"s{i}" for i in range(n_sources)]
    accuracy = np.asarray(
        [[schedule.accuracy(float(t)) for schedule in schedules] for t in times]
    )

    steps: List[ScenarioStep] = []
    truth: Dict[ObjectId, Value] = {}
    object_step: Dict[ObjectId, int] = {}
    for s in range(n_steps):
        objects = [f"o{s:03d}_{j}" for j in range(objects_per_step)]
        for obj in objects:
            truth[obj] = "v0"
            object_step[obj] = s
        mask = _ensure_observed(
            rng, rng.random((n_sources, objects_per_step)) < density
        )
        claims: Dict[Tuple[int, str], str] = {}
        for source in range(n_sources):
            for j in np.flatnonzero(mask[source]):
                claims[(source, objects[int(j)])] = _claim(
                    rng, accuracy[s, source], domain_size
                )
        if ensure_truth_claimed:
            _ensure_truth_claimed_step(rng, claims, objects)
        observations = [
            Observation(source_ids[source], obj, value)
            for (source, obj), value in sorted(claims.items())
        ]
        reveal = {obj: truth[obj] for obj in _reveal_sample(rng, objects, reveal_fraction)}
        steps.append(
            ScenarioStep(index=s, time=float(times[s]), observations=observations, reveal=reveal)
        )
    return Scenario(
        name=name,
        steps=steps,
        truth=truth,
        source_ids=source_ids,
        true_accuracy=accuracy,
        object_step=object_step,
    )


# ----------------------------------------------------------------------
# Generator (b): coordinated copier cliques
# ----------------------------------------------------------------------
def copier_clique_scenario(
    n_sources: int = 24,
    n_cliques: int = 2,
    clique_size: int = 4,
    copy_rate: float = 0.9,
    leader_accuracy: float = 0.5,
    honest_accuracy: float = 0.78,
    accuracy_spread: float = 0.05,
    objects_per_step: int = 16,
    n_steps: int = 12,
    density: float = 0.55,
    domain_size: int = 3,
    reveal_fraction: float = 0.3,
    name: str = "copier-cliques",
    seed: SeedLike = 0,
) -> Scenario:
    """Coordinated copier cliques riding a stream of honest sources.

    The first ``n_cliques * clique_size`` sources form cliques: each has a
    low-accuracy *leader* whose claims its copiers replicate w.p.
    ``copy_rate`` (mistakes included; otherwise they draw independently at
    their own honest accuracy).  Remaining sources are independent.  The
    correlated errors make agreeing copiers look mutually corroborating to
    any conditional-independence model — the structure
    :func:`repro.core.copying.find_candidate_pairs` and
    :class:`repro.core.copying.CopyingSLiMFast` are built to detect;
    detection parity is pinned in ``tests/scenarios/``.

    ``Scenario.cliques`` records the planted groups (leader first).
    ``true_accuracy`` carries copiers' *effective* per-claim accuracy
    ``copy_rate * leader + (1 - copy_rate) * own``.
    """
    rng = as_generator(seed)
    n_clique_members = n_cliques * clique_size
    if clique_size < 2:
        raise DatasetError("clique_size must be at least 2 (a leader plus one copier)")
    if n_clique_members > n_sources:
        raise DatasetError("n_cliques * clique_size cannot exceed n_sources")
    if not 0.0 <= copy_rate <= 1.0:
        raise DatasetError("copy_rate must be in [0, 1]")

    source_ids = [f"s{i}" for i in range(n_sources)]
    own_accuracy = np.clip(
        honest_accuracy + rng.normal(scale=accuracy_spread, size=n_sources),
        *_ACCURACY_CLIP,
    )
    cliques: List[List[SourceId]] = []
    leader_of: Dict[int, int] = {}
    for g in range(n_cliques):
        block = list(range(g * clique_size, (g + 1) * clique_size))
        leader = block[0]
        own_accuracy[leader] = leader_accuracy
        for member in block[1:]:
            leader_of[member] = leader
        cliques.append([source_ids[i] for i in block])

    effective = own_accuracy.copy()
    for member, leader in leader_of.items():
        effective[member] = (
            copy_rate * own_accuracy[leader] + (1.0 - copy_rate) * own_accuracy[member]
        )

    times = _times(n_steps)
    steps: List[ScenarioStep] = []
    truth: Dict[ObjectId, Value] = {}
    object_step: Dict[ObjectId, int] = {}
    for s in range(n_steps):
        objects = [f"o{s:03d}_{j}" for j in range(objects_per_step)]
        for obj in objects:
            truth[obj] = "v0"
            object_step[obj] = s
        mask = _ensure_observed(
            rng, rng.random((n_sources, objects_per_step)) < density
        )
        claims: Dict[Tuple[int, str], str] = {}
        # Leaders and independent sources draw their own claims first.
        for source in range(n_sources):
            if source in leader_of:
                continue
            for j in np.flatnonzero(mask[source]):
                claims[(source, objects[int(j)])] = _claim(
                    rng, own_accuracy[source], domain_size
                )
        # Copiers replicate their leader's claims (errors included) w.p.
        # copy_rate on the leader's objects, and draw independently on
        # their own mask elsewhere.
        for member, leader in leader_of.items():
            for j in range(objects_per_step):
                obj = objects[j]
                leader_value = claims.get((leader, obj))
                if leader_value is not None:
                    if rng.random() < copy_rate:
                        claims[(member, obj)] = leader_value
                    else:
                        claims[(member, obj)] = _claim(rng, own_accuracy[member], domain_size)
                elif mask[member, j]:
                    claims[(member, obj)] = _claim(rng, own_accuracy[member], domain_size)
        _ensure_truth_claimed_step(rng, claims, objects)
        observations = [
            Observation(source_ids[source], obj, value)
            for (source, obj), value in sorted(claims.items())
        ]
        reveal = {obj: truth[obj] for obj in _reveal_sample(rng, objects, reveal_fraction)}
        steps.append(
            ScenarioStep(index=s, time=float(times[s]), observations=observations, reveal=reveal)
        )
    return Scenario(
        name=name,
        steps=steps,
        truth=truth,
        source_ids=source_ids,
        true_accuracy=np.tile(effective, (n_steps, 1)),
        object_step=object_step,
        cliques=cliques,
    )


# ----------------------------------------------------------------------
# Generator (c): open-world growth during streaming
# ----------------------------------------------------------------------
def open_world_scenario(
    n_sources: int = 16,
    initial_objects: int = 24,
    new_objects_per_step: int = 4,
    n_steps: int = 15,
    claim_rate: float = 0.12,
    initial_domain: int = 2,
    growth_rate: float = 0.25,
    accuracy: float = 0.72,
    accuracy_spread: float = 0.1,
    reveal_fraction: float = 0.3,
    name: str = "open-world",
    seed: SeedLike = 0,
) -> Scenario:
    """An object universe and value domains that grow *during* streaming.

    Each step adds ``new_objects_per_step`` fresh objects, and every live
    object's candidate-value pool gains a new (wrong) alternative w.p.
    ``growth_rate`` — so later claims can introduce values no earlier
    batch mentioned, exercising the incremental encoding's domain-growth
    and the streaming score table's span-relocation paths.  Sources that
    have not yet claimed an object do so w.p. ``claim_rate`` per step
    (each (source, object) pair claims at most once, the streaming
    dataset invariant), erring uniformly over the object's *current*
    alternative pool.  Source accuracies are static here; compose with
    :func:`drift_scenario` schedules for drift-plus-growth workloads.
    """
    rng = as_generator(seed)
    if initial_domain < 2:
        raise DatasetError("initial_domain must be at least 2")
    if not 0.0 < claim_rate <= 1.0:
        raise DatasetError("claim_rate must be in (0, 1]")
    if not 0.0 <= growth_rate <= 1.0:
        raise DatasetError("growth_rate must be in [0, 1]")

    source_ids = [f"s{i}" for i in range(n_sources)]
    accuracies = np.clip(
        accuracy + rng.normal(scale=accuracy_spread, size=n_sources), *_ACCURACY_CLIP
    )

    times = _times(n_steps)
    steps: List[ScenarioStep] = []
    truth: Dict[ObjectId, Value] = {}
    object_step: Dict[ObjectId, int] = {}
    pool_size: Dict[ObjectId, int] = {}  # current candidate-pool size (truth included)
    claimed: Set[Tuple[int, ObjectId]] = set()
    live: List[ObjectId] = []
    for s in range(n_steps):
        fresh = initial_objects if s == 0 else new_objects_per_step
        new_objects = [f"o{s:03d}_{j}" for j in range(fresh)]
        for obj in new_objects:
            truth[obj] = "v0"
            object_step[obj] = s
            pool_size[obj] = initial_domain
        live.extend(new_objects)

        # Open-world growth: existing pools gain a fresh alternative.
        grew = rng.random(len(live)) < growth_rate
        for keep, obj in zip(grew, live):
            if keep and obj not in new_objects:
                pool_size[obj] += 1

        claims: Dict[Tuple[int, str], str] = {}
        for obj in live:
            for source in range(n_sources):
                if (source, obj) in claimed:
                    continue
                force_first = obj in new_objects and not any(
                    (other, obj) in claims for other in range(n_sources)
                )
                if rng.random() < claim_rate or (source == n_sources - 1 and force_first):
                    claims[(source, obj)] = _claim(rng, accuracies[source], pool_size[obj])
                    claimed.add((source, obj))
        _ensure_truth_claimed_step(rng, claims, new_objects)
        observations = [
            Observation(source_ids[source], obj, value)
            for (source, obj), value in sorted(claims.items())
        ]
        reveal = {
            obj: truth[obj] for obj in _reveal_sample(rng, new_objects, reveal_fraction)
        }
        steps.append(
            ScenarioStep(index=s, time=float(times[s]), observations=observations, reveal=reveal)
        )
    return Scenario(
        name=name,
        steps=steps,
        truth=truth,
        source_ids=source_ids,
        true_accuracy=np.tile(accuracies, (n_steps, 1)),
        object_step=object_step,
    )


__all__ = [
    "DriftSchedule",
    "ScenarioStep",
    "Scenario",
    "default_drift_schedules",
    "drift_scenario",
    "copier_clique_scenario",
    "open_world_scenario",
]
