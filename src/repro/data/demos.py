"""Demonstrations (GDELT) dataset simulator (Table 1 column "Demos").

The original dataset holds GDELT extractions of African demonstration
events (Jan-Apr 2015): 522 online-news sources, 3105 boolean objects ("is
this extracted event real?"), ~27.7k observations, average source accuracy
≈ 0.60.  The paper's headline result on this dataset — SLiMFast beating
independence-assuming baselines by up to 50% — hinges on *source
correlations*: news domains copy stories (and extraction errors) from each
other.

Mechanisms matched here:

* 522 sources / 3105 binary objects / ≈0.017 density / avg accuracy 0.604;
* copying clusters: a configurable fraction of sources are followers that
  replicate a leader's claims (errors included) with high fidelity —
  breaking the conditional-independence assumption of Counts/ACCU;
* 7 Alexa traffic features with informative usage statistics (as in the
  Stocks simulator) driving the *leaders'* accuracies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.types import Observation
from .simulators import (
    SeedLike,
    as_generator,
    draw_claims,
    ensure_truth_claimed,
    feature_driven_accuracies,
    quantile_levels,
)

FEATURE_EFFECTS: Dict[str, float] = {
    "Rank": -0.05,
    "CountryRank": -0.03,
    "BounceRate": -0.25,
    "DailyPageViewsPerVisitor": 0.12,
    "DailyTimeOnSite": 0.25,
    "SearchVisits": 0.10,
    "TotalSitesLinkingIn": 0.0,
}

N_LEVELS = 7


def generate_demos(
    n_sources: int = 522,
    n_objects: int = 3105,
    density: float = 0.017,
    avg_accuracy: float = 0.604,
    n_copy_groups: int = 40,
    copy_group_size: int = 6,
    copy_fidelity: float = 0.92,
    seed: SeedLike = 0,
) -> FusionDataset:
    """Generate the simulated Demonstrations dataset.

    Roughly ``n_copy_groups * (copy_group_size - 1)`` sources are followers
    whose claims mirror their leader's — correlated errors included.
    """
    rng = as_generator(seed)

    raw = {name: rng.lognormal(sigma=1.0, size=n_sources) for name in FEATURE_EFFECTS}
    levels = {name: quantile_levels(values, N_LEVELS) for name, values in raw.items()}
    logits = np.zeros(n_sources)
    for name, effect in FEATURE_EFFECTS.items():
        idx = np.asarray([int(level[1:]) - 1 for level in levels[name]], dtype=float)
        logits += effect * (idx - (N_LEVELS - 1) / 2.0)
    accuracies = feature_driven_accuracies(logits, avg_accuracy, rng, noise_scale=0.25)

    true_values: List[str] = [
        "real" if rng.random() < 0.6 else "spurious" for _ in range(n_objects)
    ]

    def wrong_value(_: np.random.Generator, obj: int) -> str:
        return "spurious" if true_values[obj] == "real" else "real"

    # Copying clusters.
    n_grouped = min(n_copy_groups * copy_group_size, n_sources // 2)
    grouped = rng.choice(n_sources, size=n_grouped, replace=False)
    followers_of: Dict[int, List[int]] = {}
    follower_set = set()
    for g in range(n_copy_groups):
        block = grouped[g * copy_group_size : (g + 1) * copy_group_size]
        if block.size < 2:
            break
        leader = int(block[0])
        members = [int(b) for b in block[1:]]
        followers_of[leader] = members
        follower_set.update(members)

    # Independent sources (leaders included) draw their own claims.
    independent_pairs: List[Tuple[int, int]] = []
    mask = rng.random((n_sources, n_objects)) < density
    for source in range(n_sources):
        if source in follower_set:
            continue
        for obj in np.nonzero(mask[source])[0]:
            independent_pairs.append((source, int(obj)))
    claims = draw_claims(rng, accuracies, independent_pairs, true_values, wrong_value)

    # Followers replicate their leader (claims *and* errors).
    for leader, members in followers_of.items():
        leader_claims = {obj: v for (src, obj), v in claims.items() if src == leader}
        for member in members:
            for obj, value in leader_claims.items():
                if rng.random() < copy_fidelity:
                    claims[(member, obj)] = value
                else:
                    claims[(member, obj)] = (
                        true_values[obj]
                        if rng.random() < accuracies[member]
                        else wrong_value(rng, obj)
                    )

    # Every object needs at least one claim.
    covered = {obj for (_, obj) in claims}
    for obj in range(n_objects):
        if obj in covered:
            continue
        source = int(rng.integers(n_sources))
        value = (true_values[obj] if rng.random() < accuracies[source] else wrong_value(rng, obj))
        claims[(source, obj)] = value
    ensure_truth_claimed(rng, claims, true_values, n_objects)

    source_ids = [f"news-{i}.example.org" for i in range(n_sources)]
    object_ids = [f"event-{obj}" for obj in range(n_objects)]
    observations = [
        Observation(source_ids[source], object_ids[obj], value)
        for (source, obj), value in sorted(claims.items())
    ]
    ground_truth = {object_ids[obj]: true_values[obj] for obj in range(n_objects)}
    source_features = {
        source_ids[i]: {name: levels[name][i] for name in FEATURE_EFFECTS}
        for i in range(n_sources)
    }
    true_accuracy_map = {source_ids[i]: float(accuracies[i]) for i in range(n_sources)}
    return FusionDataset(
        observations,
        ground_truth=ground_truth,
        source_features=source_features,
        true_accuracies=true_accuracy_map,
        name="demos-sim",
    )
