"""Synthetic fusion-instance generator (paper Example 6 / Figure 4).

Generates datasets with controllable:

* number of sources / objects and observation **density** (probability that
  a source observes an object — the paper's ``p``);
* **average source accuracy** and its spread;
* **domain-feature informativeness**: accuracies are driven by a linear
  model over binary source features, so domain features genuinely predict
  accuracy (the mechanism SLiMFast exploits);
* **domain size** per object (binary by default, multi-valued supported);
* **copying groups**: clusters of sources that replicate a leader's claims
  with high fidelity, creating the correlated-error structure that breaks
  conditional-independence baselines (used by the Demonstrations
  simulator and the Appendix D experiment).

All randomness flows through a single seeded generator, so datasets are
reproducible and every experiment can average over seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.types import DatasetError, Observation
from ..optim.numerics import sigmoid
from .simulators import SeedLike, as_generator


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic generator.

    Attributes
    ----------
    n_sources, n_objects:
        Instance size (paper Example 6 uses 1000 x 1000).
    density:
        Probability a source observes any given object.
    avg_accuracy, accuracy_spread:
        Mean and dispersion of true source accuracies.
    n_features, n_informative, feature_strength:
        Binary feature count, how many actually drive accuracy, and how
        strongly (log-odds units per active informative feature).
    domain_size_range:
        Inclusive (lo, hi) range of wrong-value pool sizes per object; the
        claimed domain an object ends up with depends on which values get
        sampled.
    copy_groups, copy_group_size, copy_fidelity:
        Copying structure: ``copy_groups`` leaders each have
        ``copy_group_size - 1`` followers replicating their claims with
        probability ``copy_fidelity``.
    ensure_truth_claimed:
        Enforce single-truth semantics (at least one source provides the
        true value) by flipping one claim per violating object.
    min_observations:
        Guarantee every object receives at least this many observations.
    """

    n_sources: int = 1000
    n_objects: int = 1000
    density: float = 0.01
    avg_accuracy: float = 0.7
    accuracy_spread: float = 0.1
    n_features: int = 10
    n_informative: int = 5
    feature_strength: float = 1.0
    domain_size_range: Tuple[int, int] = (2, 2)
    copy_groups: int = 0
    copy_group_size: int = 5
    copy_fidelity: float = 0.9
    ensure_truth_claimed: bool = True
    min_observations: int = 1
    feature_prefix: str = "f"
    name: str = "synthetic"
    seed: SeedLike = 0

    def validate(self) -> None:
        if self.n_sources < 1 or self.n_objects < 1:
            raise DatasetError("n_sources and n_objects must be positive")
        if not 0.0 < self.density <= 1.0:
            raise DatasetError("density must be in (0, 1]")
        if not 0.0 < self.avg_accuracy < 1.0:
            raise DatasetError("avg_accuracy must be in (0, 1)")
        if self.domain_size_range[0] < 2 or self.domain_size_range[1] < self.domain_size_range[0]:
            raise DatasetError("domain_size_range must be (lo >= 2, hi >= lo)")
        if self.n_informative > self.n_features:
            raise DatasetError("n_informative cannot exceed n_features")


@dataclass
class SyntheticInstance:
    """A generated dataset plus the latent quantities that produced it."""

    dataset: FusionDataset
    true_accuracies: np.ndarray
    feature_matrix: np.ndarray
    feature_weights: np.ndarray
    copy_groups: List[List[str]] = field(default_factory=list)


def _source_accuracies(config: SyntheticConfig, rng: np.random.Generator) -> Tuple[
    np.ndarray, np.ndarray, np.ndarray
]:
    """Draw binary features and feature-driven accuracies."""
    features = (rng.random((config.n_sources, config.n_features)) < 0.5).astype(float)
    weights = np.zeros(config.n_features)
    if config.n_informative:
        signs = rng.choice([-1.0, 1.0], size=config.n_informative)
        weights[: config.n_informative] = signs * config.feature_strength
    score = features @ weights
    if score.std() > 0:
        score = (score - score.mean()) / score.std()
    noise = rng.normal(scale=0.5, size=config.n_sources)
    logits = float(np.log(config.avg_accuracy / (1.0 - config.avg_accuracy)))
    spread_scale = 4.0 * config.accuracy_spread  # spread in probability units
    accuracies = sigmoid(logits + spread_scale * score + 0.3 * noise)
    accuracies = np.clip(accuracies, 0.02, 0.98)
    # Re-center the mean exactly on avg_accuracy.
    accuracies += config.avg_accuracy - float(accuracies.mean())
    return np.clip(accuracies, 0.02, 0.98), features, weights


def generate(config: Optional[SyntheticConfig] = None, **overrides: object) -> SyntheticInstance:
    """Generate a synthetic fusion instance.

    Either pass a full :class:`SyntheticConfig` or keyword overrides of its
    defaults, e.g. ``generate(density=0.02, avg_accuracy=0.6)``.
    """
    if config is None:
        config = SyntheticConfig(**overrides)
    elif overrides:
        config = SyntheticConfig(**{**config.__dict__, **overrides})
    config.validate()
    rng = as_generator(config.seed)

    accuracies, features, weights = _source_accuracies(config, rng)

    source_ids = [f"s{i}" for i in range(config.n_sources)]
    object_ids = [f"o{j}" for j in range(config.n_objects)]
    lo, hi = config.domain_size_range
    wrong_pool_sizes = rng.integers(lo - 1, hi - 1, size=config.n_objects, endpoint=True)

    # Copying structure: leaders own their followers' claims.
    followers_of: Dict[int, List[int]] = {}
    copy_groups: List[List[str]] = []
    if config.copy_groups:
        chosen = rng.choice(
            config.n_sources,
            size=min(config.copy_groups * config.copy_group_size, config.n_sources),
            replace=False,
        )
        for g in range(config.copy_groups):
            block = chosen[g * config.copy_group_size : (g + 1) * config.copy_group_size]
            if block.size < 2:
                continue
            leader, members = int(block[0]), [int(b) for b in block[1:]]
            followers_of[leader] = members
            copy_groups.append([source_ids[leader]] + [source_ids[m] for m in members])
    follower_set = {m for members in followers_of.values() for m in members}

    claims: Dict[Tuple[int, int], int] = {}

    def draw_claim(source: int, obj: int) -> int:
        if rng.random() < accuracies[source]:
            return 0  # canonical true value
        return int(rng.integers(1, wrong_pool_sizes[obj] + 1))

    # Independent observations.
    observed = rng.random((config.n_sources, config.n_objects)) < config.density
    for source in range(config.n_sources):
        if source in follower_set:
            continue
        for obj in np.nonzero(observed[source])[0]:
            claims[(source, int(obj))] = draw_claim(source, int(obj))

    # Followers: replicate the leader's claims with given fidelity, plus
    # their own independent draws elsewhere.
    for leader, members in followers_of.items():
        leader_claims = {obj: value for (src, obj), value in claims.items() if src == leader}
        for member in members:
            for obj, value in leader_claims.items():
                if rng.random() < config.copy_fidelity:
                    claims[(member, obj)] = value
                else:
                    claims[(member, obj)] = draw_claim(member, obj)
            for obj in np.nonzero(observed[member])[0]:
                key = (member, int(obj))
                if key not in claims:
                    claims[key] = draw_claim(member, int(obj))

    # Coverage guarantee: every object needs min_observations claims.
    per_object: Dict[int, List[int]] = {}
    for (source, obj) in claims:
        per_object.setdefault(obj, []).append(source)
    for obj in range(config.n_objects):
        existing = per_object.get(obj, [])
        while len(existing) < config.min_observations:
            source = int(rng.integers(config.n_sources))
            if (source, obj) in claims:
                if len(existing) >= config.n_sources:
                    break
                continue
            claims[(source, obj)] = draw_claim(source, obj)
            existing.append(source)

    # Single-truth semantics: at least one source must claim the truth.
    if config.ensure_truth_claimed:
        truth_claimed = {obj: False for obj in range(config.n_objects)}
        for (source, obj), value in claims.items():
            if value == 0:
                truth_claimed[obj] = True
        for obj, has_truth in truth_claimed.items():
            if not has_truth:
                holders = [src for (src, o) in claims if o == obj]
                if holders:
                    lucky = holders[int(rng.integers(len(holders)))]
                    claims[(lucky, obj)] = 0

    observations = [
        Observation(source_ids[source], object_ids[obj], f"v{value}")
        for (source, obj), value in sorted(claims.items())
    ]
    ground_truth = {object_ids[obj]: "v0" for obj in range(config.n_objects)}
    source_features = {
        source_ids[i]: {
            f"{config.feature_prefix}{k}": bool(features[i, k])
            for k in range(config.n_features)
        }
        for i in range(config.n_sources)
    }
    true_accuracy_map = {source_ids[i]: float(accuracies[i]) for i in range(config.n_sources)}

    dataset = FusionDataset(
        observations,
        ground_truth=ground_truth,
        source_features=source_features,
        true_accuracies=true_accuracy_map,
        name=config.name,
    )
    return SyntheticInstance(
        dataset=dataset,
        true_accuracies=accuracies,
        feature_matrix=features,
        feature_weights=weights,
        copy_groups=copy_groups,
    )
