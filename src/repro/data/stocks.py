"""Stocks dataset simulator (paper Section 5.1, Table 1 column "Stocks").

The original dataset [24] has 34 web sources reporting July-2011 stock
*volumes* for 907 stock-day objects — nearly dense (an observation for
almost every source/object pair), with average source accuracy **below
0.5**: most sources report slightly differing volumes, yet the correct
value is still recoverable because the erroneous values scatter over a
small pool of popular alternatives (feed-lag copies, rounded figures).

Mechanisms matched here:

* ~0.998 density, 34 sources, 907 objects (Table 1);
* average accuracy ≈ 0.45 with wrong claims drawn from two shared
  per-object alternatives, so conflicts have small claimed domains;
* 7 Alexa-style traffic features discretized to deciles (70 feature
  values).  Bounce rate and daily-time-on-site carry real signal, while
  ``TotalSitesLinkingIn`` (the PageRank proxy) is deliberately
  *uninformative* — reproducing the paper's Figure 6 insight that
  PageRank does not predict web-source accuracy.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.types import Observation
from .simulators import (
    SeedLike,
    as_generator,
    bernoulli_pairs,
    ensure_truth_claimed,
    feature_driven_accuracies,
    quantile_levels,
)

#: Feature name -> log-odds effect per decile step (0 = uninformative).
FEATURE_EFFECTS: Dict[str, float] = {
    "Rank": -0.05,
    "CountryRank": -0.04,
    "BounceRate": -0.30,
    "DailyPageViewsPerVisitor": 0.10,
    "DailyTimeOnSite": 0.30,
    "SearchVisits": 0.08,
    "TotalSitesLinkingIn": 0.0,  # the PageRank proxy: no signal (Figure 6)
}

N_LEVELS = 10


def generate_stocks(
    n_sources: int = 34,
    n_objects: int = 907,
    density: float = 0.998,
    avg_accuracy: float = 0.45,
    n_wrong_values: int = 2,
    stale_bias: float = 0.8,
    hard_fraction: float = 0.10,
    hard_accuracy: float = 0.30,
    seed: SeedLike = 0,
) -> FusionDataset:
    """Generate the simulated Stocks dataset.

    ``stale_bias`` is the probability that an erroneous report lands on the
    object's *stale* shared value (alternative 0) rather than a uniform
    other alternative: real stock-volume errors concentrate on a lagged
    figure that many feeds replicate, which is what makes the dataset hard
    (the popular wrong value rivals the truth in vote count).

    A ``hard_fraction`` of objects is irreducibly hard (e.g. volumes around
    a split or trading halt): every source's per-claim accuracy on them
    drops to ``hard_accuracy`` uniformly, so no weighting scheme can fully
    resolve them — capping the best achievable accuracy below 1.0, as in
    the real dataset.

    Parameters mirror Table 1; reduce ``n_objects`` for faster tests.
    """
    rng = as_generator(seed)

    # Raw numeric metadata, then decile discretization.
    raw = {name: rng.lognormal(mean=0.0, sigma=1.0, size=n_sources) for name in FEATURE_EFFECTS}
    levels = {name: quantile_levels(values, N_LEVELS) for name, values in raw.items()}
    level_index = {
        name: np.asarray([int(level[1:]) - 1 for level in levels[name]], dtype=float)
        for name in FEATURE_EFFECTS
    }

    logits = np.zeros(n_sources)
    for name, effect in FEATURE_EFFECTS.items():
        centered = level_index[name] - (N_LEVELS - 1) / 2.0
        logits += effect * centered
    accuracies = feature_driven_accuracies(logits, avg_accuracy, rng, noise_scale=0.2)

    # Values: the truth plus a small pool of shared wrong alternatives per
    # object (feed-lag copies / rounded numbers).
    true_values = [f"volume_{obj}_true" for obj in range(n_objects)]

    def wrong_value(generator: np.random.Generator, obj: int) -> str:
        if n_wrong_values == 1 or generator.random() < stale_bias:
            return f"volume_{obj}_alt0"
        alt = 1 + int(generator.integers(n_wrong_values - 1))
        return f"volume_{obj}_alt{alt}"

    hard = rng.random(n_objects) < hard_fraction
    pairs = bernoulli_pairs(rng, n_sources, n_objects, density)
    claims = {}
    for source, obj in pairs:
        p_correct = hard_accuracy if hard[obj] else accuracies[source]
        if rng.random() < p_correct:
            claims[(source, obj)] = true_values[obj]
        else:
            claims[(source, obj)] = wrong_value(rng, obj)
    ensure_truth_claimed(rng, claims, true_values, n_objects)

    source_ids = [f"stock-site-{i}" for i in range(n_sources)]
    object_ids = [f"stock-{obj}" for obj in range(n_objects)]
    observations = [
        Observation(source_ids[source], object_ids[obj], value)
        for (source, obj), value in sorted(claims.items())
    ]
    ground_truth = {object_ids[obj]: true_values[obj] for obj in range(n_objects)}
    source_features = {
        source_ids[i]: {name: levels[name][i] for name in FEATURE_EFFECTS}
        for i in range(n_sources)
    }
    true_accuracy_map = {source_ids[i]: float(accuracies[i]) for i in range(n_sources)}
    return FusionDataset(
        observations,
        ground_truth=ground_truth,
        source_features=source_features,
        true_accuracies=true_accuracy_map,
        name="stocks-sim",
    )
