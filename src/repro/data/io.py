"""CSV persistence for fusion datasets.

A dataset is stored as up to four plain CSV files in a directory::

    observations.csv      source,object,value          (required)
    ground_truth.csv      object,value                 (optional)
    source_features.csv   source,feature,value         (optional)
    true_accuracies.csv   source,accuracy              (optional)

All identifiers round-trip as strings; feature values are parsed back to
bool/int/float when they look like one (the simulators only emit such
types).  This keeps the on-disk format trivially inspectable and
diff-friendly.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Union

from ..fusion.dataset import FusionDataset
from ..fusion.types import DatasetError, Observation

_OBSERVATIONS = "observations.csv"
_GROUND_TRUTH = "ground_truth.csv"
_FEATURES = "source_features.csv"
_ACCURACIES = "true_accuracies.csv"


def _parse_scalar(text: str) -> object:
    """Best-effort parse of a CSV cell back to bool/int/float/str."""
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def save_dataset(dataset: FusionDataset, directory: Union[str, Path]) -> Path:
    """Write ``dataset`` into ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / _OBSERVATIONS, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "object", "value"])
        for obs in dataset.observations:
            writer.writerow([obs.source, obs.obj, obs.value])

    if dataset.ground_truth:
        with open(directory / _GROUND_TRUTH, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["object", "value"])
            for obj, value in dataset.ground_truth.items():
                writer.writerow([obj, value])

    if dataset.source_features:
        with open(directory / _FEATURES, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["source", "feature", "value"])
            for source, features in dataset.source_features.items():
                for name, value in features.items():
                    writer.writerow([source, name, value])

    if dataset.true_accuracies:
        with open(directory / _ACCURACIES, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["source", "accuracy"])
            for source, accuracy in dataset.true_accuracies.items():
                writer.writerow([source, accuracy])

    return directory


def load_dataset(directory: Union[str, Path], name: str = "loaded") -> FusionDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    obs_path = directory / _OBSERVATIONS
    if not obs_path.exists():
        raise DatasetError(f"missing {obs_path}")

    observations = []
    with open(obs_path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            observations.append(Observation(row["source"], row["object"], row["value"]))

    ground_truth: Dict[str, str] = {}
    gt_path = directory / _GROUND_TRUTH
    if gt_path.exists():
        with open(gt_path, newline="") as handle:
            for row in csv.DictReader(handle):
                ground_truth[row["object"]] = row["value"]

    source_features: Dict[str, Dict[str, object]] = {}
    feat_path = directory / _FEATURES
    if feat_path.exists():
        with open(feat_path, newline="") as handle:
            for row in csv.DictReader(handle):
                source_features.setdefault(row["source"], {})[row["feature"]] = _parse_scalar(
                    row["value"]
                )

    true_accuracies: Dict[str, float] = {}
    acc_path = directory / _ACCURACIES
    if acc_path.exists():
        with open(acc_path, newline="") as handle:
            for row in csv.DictReader(handle):
                true_accuracies[row["source"]] = float(row["accuracy"])

    return FusionDataset(
        observations,
        ground_truth=ground_truth,
        source_features=source_features,
        true_accuracies=true_accuracies,
        name=name,
    )
