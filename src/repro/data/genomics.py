"""Genomics (GAD) dataset simulator (Table 1 column "Genomics").

The original dataset, from the Genetic Association Database, contains
gene-disease association claims extracted from scientific articles: 2750
article sources but only 3052 observations — **1.11 observations per
source** — over 571 conflicted boolean objects.  With that extreme
sparsity, per-source conflict signal is essentially nonexistent; Table 1
cannot even report an average source accuracy.  Domain features (journal,
citation count, publication year, study design) carry nearly all usable
signal, which is why SLiMFast's improvement is largest here (Table 2:
0.720 vs ≈ 0.60 for the best baseline at 20% training data).

Mechanisms matched here:

* 2750 sources with Poisson(1.11)-ish claim counts (minimum 1), 571
  binary objects, ≈ 3k observations;
* accuracy determined almost entirely by features: study type
  (knockout ≫ GWAS, matching the expert intuition of Example 1), journal
  tier, citation count and recency;
* a long-tailed ``author`` feature with thousands of values that is
  *uninformative* — the L1-regularization story (Theorem 2's sparse bound)
  depends on surviving such features.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.types import Observation
from .simulators import (
    SeedLike,
    as_generator,
    ensure_truth_claimed,
    feature_driven_accuracies,
)

STUDY_TYPES: Dict[str, float] = {
    "knockout": 0.9,
    "case-control": 0.2,
    "meta-analysis": 0.5,
    "GWAS": -0.7,
}

JOURNAL_TIERS: Dict[str, float] = {
    "tier1": 0.8,
    "tier2": 0.3,
    "tier3": -0.2,
    "tier4": -0.6,
}


def generate_genomics(
    n_sources: int = 2750,
    n_objects: int = 571,
    mean_claims_per_source: float = 1.11,
    avg_accuracy: float = 0.62,
    n_authors: int = 1500,
    seed: SeedLike = 0,
) -> FusionDataset:
    """Generate the simulated Genomics dataset."""
    rng = as_generator(seed)

    study = [list(STUDY_TYPES)[int(rng.integers(len(STUDY_TYPES)))] for _ in range(n_sources)]
    journal = [list(JOURNAL_TIERS)[int(rng.integers(len(JOURNAL_TIERS)))] for _ in range(n_sources)]
    citations = rng.lognormal(mean=2.5, sigma=1.2, size=n_sources).astype(int)
    pub_year = rng.integers(1995, 2016, size=n_sources)
    authors = [f"author-{int(rng.integers(n_authors))}" for _ in range(n_sources)]

    citation_effect = 0.25 * (np.log1p(citations) - float(np.mean(np.log1p(citations))))
    year_effect = 0.03 * (pub_year - float(np.mean(pub_year)))
    logits = (
        np.asarray([STUDY_TYPES[s] for s in study])
        + np.asarray([JOURNAL_TIERS[j] for j in journal])
        + citation_effect
        + year_effect
    )
    accuracies = feature_driven_accuracies(logits, avg_accuracy, rng, noise_scale=0.2)

    true_values: List[str] = [
        "positive" if rng.random() < 0.55 else "negative" for _ in range(n_objects)
    ]

    # Sparse claim assignment: each article makes ~1 claim.
    claims: Dict[Tuple[int, int], str] = {}
    for source in range(n_sources):
        n_claims = max(1, int(rng.poisson(mean_claims_per_source)))
        objects = rng.choice(n_objects, size=min(n_claims, n_objects), replace=False)
        for obj in objects:
            obj = int(obj)
            if rng.random() < accuracies[source]:
                claims[(source, obj)] = true_values[obj]
            else:
                claims[(source, obj)] = (
                    "negative" if true_values[obj] == "positive" else "positive"
                )

    # Cover every object (the real dataset keeps only objects with
    # conflicting observations from >= 2 sources, so enforce >= 2 claims).
    per_object: Dict[int, int] = {}
    for (_, obj) in claims:
        per_object[obj] = per_object.get(obj, 0) + 1
    for obj in range(n_objects):
        while per_object.get(obj, 0) < 2:
            source = int(rng.integers(n_sources))
            if (source, obj) in claims:
                continue
            if rng.random() < accuracies[source]:
                claims[(source, obj)] = true_values[obj]
            else:
                claims[(source, obj)] = (
                    "negative" if true_values[obj] == "positive" else "positive"
                )
            per_object[obj] = per_object.get(obj, 0) + 1
    ensure_truth_claimed(rng, claims, true_values, n_objects)

    source_ids = [f"pmid-{100000 + i}" for i in range(n_sources)]
    object_ids = [f"gene-disease-{obj}" for obj in range(n_objects)]
    observations = [
        Observation(source_ids[source], object_ids[obj], value)
        for (source, obj), value in sorted(claims.items())
    ]
    ground_truth = {object_ids[obj]: true_values[obj] for obj in range(n_objects)}
    source_features = {
        source_ids[i]: {
            "journal": journal[i],
            "citations": int(citations[i]),
            "pub_year": int(pub_year[i]),
            "study": study[i],
            "author": authors[i],
        }
        for i in range(n_sources)
    }
    true_accuracy_map = {source_ids[i]: float(accuracies[i]) for i in range(n_sources)}
    return FusionDataset(
        observations,
        ground_truth=ground_truth,
        source_features=source_features,
        true_accuracies=true_accuracy_map,
        name="genomics-sim",
    )
