"""The one seed-normalization chokepoint for the whole package.

Every RNG in ``repro`` — simulators, SGD solvers, Gibbs sweeps, dataset
splits, demo drivers — is created through :func:`as_generator` or
:func:`spawn_generators`.  Routing construction through a single leaf
module (this one imports nothing but numpy, so anything may import it)
is what makes the determinism contract *checkable*: the ``RA1`` rule of
``tools/repro_analysis`` flags any ``np.random.default_rng`` /
module-level ``np.random.*`` / stdlib ``random.*`` call outside this
file, so an unseeded or ad-hoc RNG cannot slip into ``src/repro``
silently.

The public import path is unchanged: :mod:`repro.data.simulators`
re-exports everything here (``from repro.data import as_generator``),
and these are the same function objects.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "spawn_generators"]

#: Anything the simulators accept as a randomness source: an int seed, a
#: ready-made :class:`numpy.random.Generator`, a ``SeedSequence``, or
#: ``None`` (OS entropy — not reproducible, use only interactively).
SeedLike = Union[int, np.integer, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Normalize a seed-like argument into a :class:`numpy.random.Generator`.

    Every generator in :mod:`repro.data` routes its ``seed`` argument
    through here, so callers can pass either an int seed *or* an existing
    ``Generator`` (e.g. a stream split off a shared ``SeedSequence``).
    Passing a ``Generator`` hands over its live state: the simulator
    advances it, so two calls with the same generator object produce
    different (but seed-deterministic) datasets.

    Reproducibility across process boundaries: an int seed is hashed by
    ``numpy``'s ``SeedSequence`` into the PCG64 state deterministically,
    with no dependence on process start method — the same seed produces
    the same dataset in the parent, in a ``fork`` worker, and in a
    ``spawn`` worker (pinned in ``tests/data/test_simulators.py``).

    Legacy ``numpy.random.RandomState`` objects are rejected: their
    sampling algorithms differ from ``Generator``'s, so accepting them
    would silently break the cross-process determinism contract.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.RandomState):
        raise TypeError(
            "legacy numpy.random.RandomState is not supported; pass an int "
            "seed or a numpy.random.Generator (np.random.default_rng(seed))"
        )
    if seed is None or isinstance(seed, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be an int, numpy.random.Generator, SeedSequence or None, "
        f"got {type(seed).__name__}"
    )


def spawn_generators(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Split ``n`` independent child generators off one seed.

    Children are derived through ``SeedSequence.spawn``, so parallel
    workers (fork or spawn) can each own a statistically independent
    stream while the whole ensemble stays reproducible from one seed.
    A live ``Generator`` is split through its own bit generator's seed
    sequence when available.
    """
    if isinstance(seed, np.random.Generator):
        sequence = getattr(seed.bit_generator, "seed_seq", None)
        if sequence is None:  # pragma: no cover - exotic bit generators
            sequence = np.random.SeedSequence(int(seed.integers(2**63)))
    elif isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]
