"""Domain-specific feature engineering (paper Section 3.1).

SLiMFast consumes *binary* domain features: each source either has or does
not have a feature value such as ``"BounceRate=High"`` or
``"channel=clixsense"``.  Real metadata is rarely binary, so the paper
discretizes numeric statistics (e.g. Alexa traffic numbers) into buckets and
one-hot encodes categoricals ("We found that discretization does not affect
SLiMFast's performance significantly").

:class:`FeatureSpace` performs exactly that transformation and produces the
dense ``|S| x |K|`` 0/1 design matrix the learners consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .dataset import FusionDataset
from .types import DatasetError, Indexer, SourceId


@dataclass(frozen=True)
class FeatureColumn:
    """One binary column of the design matrix.

    Attributes
    ----------
    name:
        Raw feature name this column was derived from.
    label:
        Full human-readable column label, e.g. ``"BounceRate=High"``.
    """

    name: str
    label: str


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool)


def _bin_labels(n_bins: int) -> List[str]:
    """Human-readable ordinal labels for quantile bins."""
    if n_bins == 2:
        return ["Low", "High"]
    if n_bins == 3:
        return ["Low", "Mid", "High"]
    return [f"Q{i + 1}" for i in range(n_bins)]


class FeatureSpace:
    """Binary feature encoder for source metadata.

    Parameters
    ----------
    n_bins:
        Number of quantile bins for numeric features (paper uses coarse
        Low/High style discretization; default 2).
    include_missing:
        When True, sources lacking a raw feature get a dedicated
        ``"name=<missing>"`` column instead of all-zeros for that feature.

    Usage::

        space = FeatureSpace(n_bins=2)
        design = space.fit(dataset)          # |S| x |K| float matrix
        space.column_labels                  # names per column
        row = space.encode({"citations": 12})  # encode a new source
    """

    def __init__(self, n_bins: int = 2, include_missing: bool = False) -> None:
        if n_bins < 2:
            raise DatasetError("n_bins must be at least 2")
        self.n_bins = n_bins
        self.include_missing = include_missing
        self._columns: Indexer[str] = Indexer()
        self._column_meta: List[FeatureColumn] = []
        self._numeric_edges: Dict[str, np.ndarray] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, dataset: FusionDataset) -> np.ndarray:
        """Learn the encoding from ``dataset.source_features`` and encode it.

        Returns the ``|S| x |K|`` design matrix with rows aligned to
        ``dataset.sources`` index order.  Datasets without features yield a
        ``|S| x 0`` matrix, which turns SLiMFast into the paper's
        ``Sources-*`` variants.
        """
        self.fit_metadata(dataset.source_features)
        return self.encode_sources(dataset)

    def fit_metadata(self, metadata: Mapping[SourceId, Mapping[str, object]]) -> "FeatureSpace":
        """Learn the encoding from a raw source-metadata mapping.

        The dataset-free half of :meth:`fit`: quantile edges and column
        layout are derived from ``metadata`` alone, so callers that grow a
        dataset incrementally (:class:`~repro.fusion.encoding.IncrementalEncoding`)
        can fit the space once up front and :meth:`encode` each new
        source's row as it appears.  Returns ``self`` for chaining.
        """
        names = sorted({name for feats in metadata.values() for name in feats})

        for name in names:
            values = [feats[name] for feats in metadata.values() if name in feats]
            if values and all(_is_numeric(v) for v in values):
                self._fit_numeric_column(name, np.asarray(values, dtype=float))
            else:
                self._fit_categorical_column(name, values)
            if self.include_missing:
                self._add_column(name, f"{name}=<missing>")

        self._fitted = True
        return self

    def _fit_numeric_column(self, name: str, values: np.ndarray) -> None:
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        edges = np.unique(np.quantile(values, quantiles))
        # Degenerate edges (at or below the minimum) would create empty
        # bins; a constant feature collapses to a single bin.
        edges = edges[(edges > values.min()) & (edges <= values.max())]
        self._numeric_edges[name] = edges
        n_actual_bins = len(edges) + 1
        for label in _bin_labels(self.n_bins)[:n_actual_bins]:
            self._add_column(name, f"{name}={label}")

    def _fit_categorical_column(self, name: str, values: Sequence[object]) -> None:
        seen: List[object] = []
        seen_set = set()
        for value in values:
            key = repr(value)
            if key not in seen_set:
                seen_set.add(key)
                seen.append(value)
        for value in seen:
            self._add_column(name, f"{name}={value}")

    def _add_column(self, name: str, label: str) -> int:
        idx = self._columns.add(label)
        if idx == len(self._column_meta):
            self._column_meta.append(FeatureColumn(name=name, label=label))
        return idx

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, features: Mapping[str, object]) -> np.ndarray:
        """Encode one source's raw feature mapping into a binary row."""
        if not self._fitted:
            raise DatasetError("FeatureSpace must be fitted before encoding")
        row = np.zeros(len(self._columns), dtype=float)
        for name, value in features.items():
            label = self._value_label(name, value)
            if label is not None and label in self._columns:
                row[self._columns.index(label)] = 1.0
        if self.include_missing:
            present = set(features)
            for column in self._column_meta:
                if column.label.endswith("=<missing>") and column.name not in present:
                    row[self._columns.index(column.label)] = 1.0
        return row

    def _value_label(self, name: str, value: object) -> Optional[str]:
        if name in self._numeric_edges and _is_numeric(value):
            edges = self._numeric_edges[name]
            bin_idx = int(np.searchsorted(edges, float(value), side="right"))
            labels = _bin_labels(self.n_bins)[: len(edges) + 1]
            if bin_idx < len(labels):
                return f"{name}={labels[bin_idx]}"
            return None
        return f"{name}={value}"

    def encode_sources(self, dataset: FusionDataset) -> np.ndarray:
        """Encode every source of ``dataset`` (rows in source-index order)."""
        if not self._fitted:
            raise DatasetError("FeatureSpace must be fitted before encoding")
        rows = np.zeros((dataset.n_sources, len(self._columns)), dtype=float)
        for source in dataset.sources:
            feats = dataset.source_features.get(source)
            if feats or (self.include_missing and feats is not None):
                rows[dataset.sources.index(source)] = self.encode(feats)
        return rows

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def column_labels(self) -> List[str]:
        """Labels of all design-matrix columns, in column order."""
        return self._columns.items

    def columns_for(self, name: str) -> List[Tuple[int, str]]:
        """(index, label) pairs of the columns derived from raw feature ``name``."""
        return [
            (i, column.label)
            for i, column in enumerate(self._column_meta)
            if column.name == name
        ]


def build_design_matrix(
    dataset: FusionDataset,
    feature_space: Optional[FeatureSpace] = None,
    use_features: bool = True,
) -> Tuple[np.ndarray, FeatureSpace]:
    """Convenience helper returning ``(design, fitted_space)``.

    With ``use_features=False`` the design matrix has zero columns which
    reduces SLiMFast to the Sources-only variants of the paper.
    """
    space = feature_space if feature_space is not None else FeatureSpace()
    if not use_features:
        empty = FeatureSpace()
        empty._fitted = True
        return np.zeros((dataset.n_sources, 0), dtype=float), empty
    design = space.fit(dataset)
    return design, space
