"""Domain-specific feature engineering (paper Section 3.1).

SLiMFast consumes *binary* domain features: each source either has or does
not have a feature value such as ``"BounceRate=High"`` or
``"channel=clixsense"``.  Real metadata is rarely binary, so the paper
discretizes numeric statistics (e.g. Alexa traffic numbers) into buckets and
one-hot encodes categoricals ("We found that discretization does not affect
SLiMFast's performance significantly").

:class:`FeatureSpace` performs exactly that transformation with an explicit
sklearn-style lifecycle::

    space = FeatureSpace(n_bins=2)
    space.fit(dataset.source_features)     # learn bins + column layout
    design = space.transform(dataset)      # |S| x |K| 0/1 design matrix
    row = space.transform_one({"citations": 12})  # encode a new source

A fitted space is summarized by a frozen, hashable :class:`FeatureSpec`
(``space.spec``) and round-trips via :meth:`FeatureSpace.to_state` /
:meth:`FeatureSpace.from_state` like
:class:`~repro.fusion.encoding.DenseEncoding`.  The legacy one-shot
``space.fit(dataset) -> matrix`` call is kept as a deprecation shim.

Data-derived reliability features (volume, corroboration, recency, ...)
live in :mod:`repro.featurize`, which composes its feature groups with this
metadata encoder into one design matrix.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .dataset import FusionDataset
from .types import DatasetError, Indexer, SourceId

#: Bump when the encoding logic changes in a way that invalidates cached
#: design matrices built from an earlier version (see ``repro.featurize``).
FEATURE_SPACE_VERSION = 2

#: Accepted ``unseen`` policies for categorical values not seen at fit time.
UNSEEN_POLICIES = ("error", "other", "zero")

_OTHER_LABEL = "<other>"


@dataclass(frozen=True)
class FeatureColumn:
    """One binary column of the design matrix.

    Attributes
    ----------
    name:
        Raw feature name this column was derived from.
    label:
        Full human-readable column label, e.g. ``"BounceRate=High"``.
    """

    name: str
    label: str


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool)


def _bin_labels(n_bins: int) -> List[str]:
    """Human-readable ordinal labels for quantile bins."""
    if n_bins <= 1:
        return ["Low"]
    if n_bins == 2:
        return ["Low", "High"]
    if n_bins == 3:
        return ["Low", "Mid", "High"]
    return [f"Q{i + 1}" for i in range(n_bins)]


@dataclass(frozen=True)
class FeatureSpec:
    """Frozen, hashable summary of a fitted :class:`FeatureSpace`.

    Everything needed to reconstruct the encoder — bin edges, column
    layout, policies and the encoder version — in immutable tuples, so a
    spec can key caches (it hashes) and serialize via
    :meth:`to_state`/:meth:`from_state` like
    :class:`~repro.fusion.encoding.DenseEncoding` snapshots.
    """

    n_bins: int = 2
    include_missing: bool = False
    unseen: str = "error"
    columns: Tuple[FeatureColumn, ...] = ()
    numeric_edges: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    version: int = FEATURE_SPACE_VERSION

    def to_state(self) -> Dict[str, object]:
        """A picklable/JSON-friendly snapshot of this spec."""
        return {
            "n_bins": self.n_bins,
            "include_missing": self.include_missing,
            "unseen": self.unseen,
            "columns": [(c.name, c.label) for c in self.columns],
            "numeric_edges": [[name, list(edges)] for name, edges in self.numeric_edges],
            "version": self.version,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "FeatureSpec":
        """Rebuild a spec from a :meth:`to_state` snapshot."""
        return cls(
            n_bins=int(state["n_bins"]),
            include_missing=bool(state["include_missing"]),
            unseen=str(state["unseen"]),
            columns=tuple(FeatureColumn(name, label) for name, label in state["columns"]),
            numeric_edges=tuple(
                (str(name), tuple(float(edge) for edge in edges))
                for name, edges in state["numeric_edges"]
            ),
            version=int(state["version"]),
        )


#: Anything :meth:`FeatureSpace.transform` accepts: a dataset (rows in
#: source-index order) or an iterable of per-source feature mappings.
TransformInput = Union[FusionDataset, Iterable[Mapping[str, object]]]


class FeatureSpace:
    """Binary feature encoder for source metadata.

    Parameters
    ----------
    n_bins:
        Number of quantile bins for numeric features (paper uses coarse
        Low/High style discretization; default 2).  Duplicate quantile
        edges and edges that would bound an *empty* bucket are dropped at
        fit time, so a feature with fewer distinct values than ``n_bins``
        yields exactly one non-empty bucket column per occupied bucket.
    include_missing:
        When True, sources lacking a raw feature get a dedicated
        ``"name=<missing>"`` column instead of all-zeros for that feature.
    unseen:
        Policy for categorical values (or feature names) not seen at fit
        time: ``"error"`` (default) raises :class:`DatasetError`,
        ``"other"`` maps unseen values of known features to a dedicated
        ``"name=<other>"`` column, ``"zero"`` keeps the legacy silent
        zero-fill.

    Lifecycle::

        space = FeatureSpace(n_bins=2)
        space.fit(metadata)                  # metadata: {source: {name: value}}
        design = space.transform(dataset)    # |S| x |K| float matrix
        space.column_labels                  # names per column
        row = space.transform_one({"citations": 12})  # encode a new source

    Passing a :class:`FusionDataset` to :meth:`fit` is the deprecated
    legacy call and returns the design matrix directly.
    """

    def __init__(
        self, n_bins: int = 2, include_missing: bool = False, unseen: str = "error"
    ) -> None:
        if n_bins < 2:
            raise DatasetError("n_bins must be at least 2")
        if unseen not in UNSEEN_POLICIES:
            raise DatasetError(f"unseen must be one of {UNSEEN_POLICIES}, got {unseen!r}")
        self.n_bins = n_bins
        self.include_missing = include_missing
        self.unseen = unseen
        self._reset()

    def _reset(self) -> None:
        self._columns: Indexer[str] = Indexer()
        self._column_meta: List[FeatureColumn] = []
        self._numeric_edges: Dict[str, np.ndarray] = {}
        self._numeric_labels: Dict[str, List[str]] = {}
        self._feature_names: set = set()
        self._fitted = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        metadata: Union[FusionDataset, Mapping[SourceId, Mapping[str, object]]],
    ) -> "FeatureSpace":
        """Learn quantile edges and column layout from source metadata.

        ``metadata`` maps each source to its raw ``{name: value}`` feature
        mapping.  Re-fitting resets any previous state.  Returns ``self``
        for chaining.

        .. deprecated::
            Passing a :class:`FusionDataset` is the legacy one-shot call;
            it fits on ``dataset.source_features`` and returns the encoded
            design matrix (not ``self``).  Use
            ``space.fit(dataset.source_features)`` followed by
            ``space.transform(dataset)`` — or
            :func:`build_design_matrix` — instead.
        """
        if isinstance(metadata, FusionDataset):
            warnings.warn(
                "FeatureSpace.fit(dataset) returning the design matrix is "
                "deprecated; call space.fit(dataset.source_features) then "
                "space.transform(dataset), or use build_design_matrix",
                DeprecationWarning,
                stacklevel=2,
            )
            self.fit(metadata.source_features)
            return self.transform(metadata)
        self._reset()
        names = sorted({name for feats in metadata.values() for name in feats})

        for name in names:
            values = [feats[name] for feats in metadata.values() if name in feats]
            if values and all(_is_numeric(v) for v in values):
                self._fit_numeric_column(name, np.asarray(values, dtype=float))
            else:
                self._fit_categorical_column(name, values)
            if self.include_missing:
                self._add_column(name, f"{name}=<missing>")
            self._feature_names.add(name)

        self._fitted = True
        return self

    def fit_metadata(self, metadata: Mapping[SourceId, Mapping[str, object]]) -> "FeatureSpace":
        """Alias of :meth:`fit` kept for callers of the pre-redesign API."""
        return self.fit(metadata)

    def fit_transform(self, dataset: FusionDataset) -> np.ndarray:
        """Fit on ``dataset.source_features`` and encode its sources."""
        self.fit(dataset.source_features)
        return self.transform(dataset)

    def _fit_numeric_column(self, name: str, values: np.ndarray) -> None:
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        edges = np.unique(np.quantile(values, quantiles))
        if edges.size:
            # Keep only edges that separate two *occupied* buckets: ties or
            # near-duplicate quantiles (fewer distinct values than bins)
            # would otherwise mint empty or duplicate bucket columns.
            bins = np.searchsorted(edges, values, side="right")
            occupied = np.unique(bins)
            edges = edges[occupied[1:] - 1]
        self._numeric_edges[name] = edges
        labels = _bin_labels(len(edges) + 1)
        self._numeric_labels[name] = labels
        for label in labels:
            self._add_column(name, f"{name}={label}")

    def _fit_categorical_column(self, name: str, values: Sequence[object]) -> None:
        seen: List[object] = []
        seen_set = set()
        for value in values:
            key = repr(value)
            if key not in seen_set:
                seen_set.add(key)
                seen.append(value)
        for value in seen:
            self._add_column(name, f"{name}={value}")
        if self.unseen == "other":
            self._add_column(name, f"{name}={_OTHER_LABEL}")

    def _add_column(self, name: str, label: str) -> int:
        idx = self._columns.add(label)
        if idx == len(self._column_meta):
            self._column_meta.append(FeatureColumn(name=name, label=label))
        return idx

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise DatasetError("FeatureSpace must be fitted before encoding")

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def transform(self, sources: TransformInput, unseen: Optional[str] = None) -> np.ndarray:
        """Encode sources into the fitted binary design matrix.

        Accepts a :class:`FusionDataset` (or any dataset view exposing
        ``sources`` and ``source_features``) — rows follow source-index
        order — or an iterable of per-source feature mappings, one row
        each.  Unseen categorical values follow the space's ``unseen``
        policy (reject by default); ``unseen`` overrides it per call.
        """
        self._require_fitted()
        if hasattr(sources, "sources") and hasattr(sources, "source_features"):
            dataset = sources
            rows = np.zeros((dataset.n_sources, len(self._columns)), dtype=float)
            for source in dataset.sources:
                feats = dataset.source_features.get(source)
                if feats or (self.include_missing and feats is not None):
                    rows[dataset.sources.index(source)] = self.transform_one(feats, unseen)
            return rows
        mappings = list(sources)
        rows = np.zeros((len(mappings), len(self._columns)), dtype=float)
        for i, feats in enumerate(mappings):
            rows[i] = self.transform_one(feats, unseen)
        return rows

    def transform_one(
        self, features: Mapping[str, object], unseen: Optional[str] = None
    ) -> np.ndarray:
        """Encode one source's raw feature mapping into a binary row."""
        self._require_fitted()
        if unseen is not None and unseen not in UNSEEN_POLICIES:
            raise DatasetError(f"unseen must be one of {UNSEEN_POLICIES}, got {unseen!r}")
        row = np.zeros(len(self._columns), dtype=float)
        for name, value in features.items():
            label = self._value_label(name, value, unseen)
            if label is not None:
                row[self._columns.index(label)] = 1.0
        if self.include_missing:
            present = set(features)
            for column in self._column_meta:
                if column.label.endswith("=<missing>") and column.name not in present:
                    row[self._columns.index(column.label)] = 1.0
        return row

    def encode(self, features: Mapping[str, object]) -> np.ndarray:
        """Alias of :meth:`transform_one` kept for the pre-redesign API."""
        return self.transform_one(features)

    def encode_sources(self, dataset: FusionDataset) -> np.ndarray:
        """Alias of :meth:`transform` kept for the pre-redesign API."""
        return self.transform(dataset)

    def _value_label(
        self, name: str, value: object, unseen: Optional[str] = None
    ) -> Optional[str]:
        policy = unseen if unseen is not None else self.unseen
        if name in self._numeric_edges and _is_numeric(value):
            edges = self._numeric_edges[name]
            bin_idx = int(np.searchsorted(edges, float(value), side="right"))
            return f"{name}={self._numeric_labels[name][bin_idx]}"
        label = f"{name}={value}"
        if label in self._columns:
            return label
        if policy == "zero":
            return None
        if name not in self._feature_names:
            raise DatasetError(
                f"unknown feature {name!r}: not seen when this FeatureSpace was "
                f"fitted (known features: {sorted(self._feature_names)}); pass "
                f"unseen='zero' to ignore unknown metadata"
            )
        if policy == "other" and f"{name}={_OTHER_LABEL}" in self._columns:
            return f"{name}={_OTHER_LABEL}"
        if policy == "other":
            return None  # space was fitted without <other> columns
        raise DatasetError(
            f"unseen value {value!r} for categorical feature {name!r}; fitted "
            f"values are {[c.label for c in self._column_meta if c.name == name]}. "
            f"Use FeatureSpace(unseen='other') to bucket unseen values or "
            f"unseen='zero' for the legacy silent zero-fill"
        )

    # ------------------------------------------------------------------
    # Introspection / serialization
    # ------------------------------------------------------------------
    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def column_labels(self) -> List[str]:
        """Labels of all design-matrix columns, in column order."""
        return self._columns.items

    def columns_for(self, name: str) -> List[Tuple[int, str]]:
        """(index, label) pairs of the columns derived from raw feature ``name``."""
        return [
            (i, column.label)
            for i, column in enumerate(self._column_meta)
            if column.name == name
        ]

    @property
    def spec(self) -> FeatureSpec:
        """The frozen :class:`FeatureSpec` of this fitted space."""
        self._require_fitted()
        return FeatureSpec(
            n_bins=self.n_bins,
            include_missing=self.include_missing,
            unseen=self.unseen,
            columns=tuple(self._column_meta),
            numeric_edges=tuple(
                sorted(
                    (name, tuple(float(edge) for edge in edges))
                    for name, edges in self._numeric_edges.items()
                )
            ),
        )

    def to_state(self) -> Dict[str, object]:
        """Serializable snapshot (see :meth:`FeatureSpec.to_state`)."""
        return self.spec.to_state()

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "FeatureSpace":
        """Rebuild a fitted space from a :meth:`to_state` snapshot."""
        return cls.from_spec(FeatureSpec.from_state(state))

    @classmethod
    def from_spec(cls, spec: FeatureSpec) -> "FeatureSpace":
        """Rebuild a fitted space from its frozen :class:`FeatureSpec`."""
        space = cls(
            n_bins=spec.n_bins, include_missing=spec.include_missing, unseen=spec.unseen
        )
        for column in spec.columns:
            space._add_column(column.name, column.label)
            space._feature_names.add(column.name)
        for name, edges in spec.numeric_edges:
            space._numeric_edges[name] = np.asarray(edges, dtype=float)
            space._numeric_labels[name] = _bin_labels(len(edges) + 1)
        space._fitted = True
        return space

    @classmethod
    def empty(cls) -> "FeatureSpace":
        """A fitted zero-column space — the ``use_features=False`` design."""
        space = cls()
        space._fitted = True
        return space


def build_design_matrix(
    dataset: FusionDataset,
    feature_space: Optional[FeatureSpace] = None,
    use_features: bool = True,
) -> Tuple[np.ndarray, FeatureSpace]:
    """Convenience helper returning ``(design, fitted_space)``.

    With ``use_features=False`` the design matrix has zero columns which
    reduces SLiMFast to the Sources-only variants of the paper.  An
    already-fitted ``feature_space`` is reused as-is (its columns define
    the matrix); an unfitted one is fitted on ``dataset.source_features``.
    """
    if not use_features:
        return np.zeros((dataset.n_sources, 0), dtype=float), FeatureSpace.empty()
    space = feature_space if feature_space is not None else FeatureSpace()
    if not space._fitted:
        space.fit(dataset.source_features)
    return space.transform(dataset), space
