"""Evaluation metrics (paper Section 5.1, "Evaluation Methodology").

Two primary metrics:

* **Accuracy for true object values** — fraction of test objects whose
  estimated value matches the ground truth.
* **Error for estimated source accuracies** — weighted average of per-source
  absolute accuracy-estimation error, weighted by the number of observations
  each source provides (so a bad estimate for a prolific source is penalized
  more, matching Li et al.'s weighting scheme the paper adopts).

The module also provides the Bernoulli KL divergence used in Theorem 3 and
binary entropy used by the optimizer's information-units model.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from .dataset import FusionDataset
from .types import ObjectId, SourceId, Value

_EPS = 1e-12


def object_value_accuracy(
    predictions: Mapping[ObjectId, Value],
    truth: Mapping[ObjectId, Value],
    objects: Optional[Iterable[ObjectId]] = None,
) -> float:
    """Fraction of objects whose predicted value equals the true value.

    Parameters
    ----------
    predictions:
        Estimated true values ``v_o``.
    truth:
        Ground-truth values ``v*_o``.
    objects:
        The evaluation population (usually the test split).  Defaults to all
        objects in ``truth``.  Objects without a prediction count as wrong,
        matching the paper's accounting (every test object must be resolved).
    """
    population = list(objects) if objects is not None else list(truth)
    if not population:
        return float("nan")
    correct = sum(1 for obj in population if obj in truth and predictions.get(obj) == truth[obj])
    return correct / len(population)


def value_accuracy_from_codes(
    predicted_codes: np.ndarray,
    truth_codes: np.ndarray,
    positions: np.ndarray,
    extra_correct: int = 0,
) -> float:
    """Accuracy over ``positions`` from within-domain value codes.

    The array-native counterpart of :func:`object_value_accuracy` used by
    array-backed :class:`~repro.fusion.result.FusionResult` instances:
    ``predicted_codes`` / ``truth_codes`` are per-object value codes (-1 =
    no in-domain value), ``positions`` the evaluation population as object
    indices.  ``extra_correct`` credits matches resolved outside the code
    space (out-of-domain overrides compared as values by the caller).
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size == 0:
        return float("nan")
    predicted = predicted_codes[positions]
    matched = (predicted >= 0) & (predicted == truth_codes[positions])
    return (int(np.count_nonzero(matched)) + extra_correct) / positions.size


def source_accuracy_error(
    estimated: Mapping[SourceId, float],
    true: Mapping[SourceId, float],
    observation_counts: Mapping[SourceId, int],
) -> float:
    """Observation-weighted mean absolute error of source-accuracy estimates.

    Sources present in ``true`` but absent from ``estimated`` are skipped —
    a method is only scored on the sources it produced estimates for (all
    methods under comparison estimate every source that has observations).
    """
    num = 0.0
    den = 0.0
    for source, true_acc in true.items():
        if source not in estimated:
            continue
        weight = float(observation_counts.get(source, 0))
        if weight <= 0:
            continue
        num += weight * abs(float(estimated[source]) - float(true_acc))
        den += weight
    if den == 0:
        return float("nan")
    return num / den


def dataset_source_accuracy_error(
    dataset: FusionDataset,
    estimated: Mapping[SourceId, float],
    true: Optional[Mapping[SourceId, float]] = None,
) -> float:
    """Source-accuracy error against a dataset's empirical true accuracies.

    ``true`` defaults to the empirical per-source accuracies computed from
    the dataset's full ground truth, which is how the paper defines the
    reference accuracies ("computed using all ground truth data").
    """
    reference = dict(true) if true is not None else dataset.empirical_accuracies()
    counts = dataset.source_observation_counts()
    count_map: Dict[SourceId, int] = {
        source: int(counts[dataset.sources.index(source)]) for source in dataset.sources
    }
    return source_accuracy_error(estimated, reference, count_map)


def bernoulli_kl(p: float, q: float) -> float:
    """KL divergence ``KL(Bern(p) || Bern(q))`` with clamping for stability."""
    p = min(max(float(p), _EPS), 1.0 - _EPS)
    q = min(max(float(q), _EPS), 1.0 - _EPS)
    return p * np.log(p / q) + (1.0 - p) * np.log((1.0 - p) / (1.0 - q))


def mean_accuracy_kl(estimated: Mapping[SourceId, float], true: Mapping[SourceId, float]) -> float:
    """Average ``KL(A_s || A*_s)`` over sources, the Theorem 3 quantity."""
    divergences = [
        bernoulli_kl(estimated[source], true_acc)
        for source, true_acc in true.items()
        if source in estimated
    ]
    if not divergences:
        return float("nan")
    return float(np.mean(divergences))


def binary_entropy(p: float) -> float:
    """Entropy (bits) of a Bernoulli(p) variable; 0 at the endpoints."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return float(-p * np.log2(p) - (1.0 - p) * np.log2(1.0 - p))


def log_loss(
    posteriors: Mapping[ObjectId, Mapping[Value, float]],
    truth: Mapping[ObjectId, Value],
    objects: Optional[Iterable[ObjectId]] = None,
) -> float:
    """Mean negative log posterior assigned to the true value.

    This is the object-level log-loss ``L(w)`` of Theorem 1, estimated on a
    sample.  Objects whose true value received zero posterior mass are
    clamped to ``_EPS`` rather than producing infinities.
    """
    population = list(objects) if objects is not None else list(truth)
    losses = []
    for obj in population:
        if obj not in truth or obj not in posteriors:
            continue
        prob = float(posteriors[obj].get(truth[obj], 0.0))
        losses.append(-np.log(max(prob, _EPS)))
    if not losses:
        return float("nan")
    return float(np.mean(losses))
