"""Fusion output container shared by SLiMFast and all baselines.

Since the array-native refactor this container has two interchangeable
backings:

* **Array-backed** (the vectorized engine's output, built with
  :meth:`FusionResult.from_rows`): the estimate lives in flat NumPy arrays —
  per-object MAP *value codes* into each object's domain, a **ragged CSR
  posterior store** (:class:`~repro.fusion.posterior_store.PosteriorStore`:
  per-object offsets plus flat probabilities, ``O(total claimed values)``
  memory instead of ``O(n_objects x max_domain)``), and a per-source
  accuracy vector.  Nothing per-object is materialized in Python at
  construction time, which keeps the predict path free of O(n) dict loops.
* **Dict-backed** (baselines, streaming, hand-built results): the classic
  ``values`` / ``posteriors`` / ``source_accuracies`` dictionaries are
  stored directly; :meth:`attach_dataset` promotes such a result to array
  form for fast metric evaluation.  Promotion is *lazy* for posteriors:
  only the value codes are derived eagerly, and the ragged store builds on
  first posterior access.

Either way the public dict API is unchanged: ``values``, ``posteriors`` and
``source_accuracies`` are **lazily materialized cached views** — the first
access of an array-backed result builds the dict once and caches it, so all
existing consumers (baselines, the experiment harness, reports) keep
working without modification, while hot callers use the ``value_codes`` /
``posterior_store`` / ``source_accuracy_vector`` accessors and never pay
for the dicts.  ``posterior_matrix`` survives as a lazy *dense view* of the
ragged store, cached on first access and guarded by the store's
materialization thresholds (warn past ``DENSE_WARN_CELLS``, raise past
``DENSE_MAX_CELLS``) so out-of-core results cannot be densified by
accident.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .dataset import FusionDataset
from .metrics import (
    dataset_source_accuracy_error,
    object_value_accuracy,
    value_accuracy_from_codes,
)
from .posterior_store import PosteriorStore
from .types import ObjectId, SourceId, Value


class FusionResult:
    """Output of a data-fusion method (paper Figure 1, right side).

    Parameters
    ----------
    values:
        Estimated true value ``v_o`` for every object.
    posteriors:
        Optional posterior distribution ``P(T_o = d | Ω)`` per object; only
        methods with probabilistic semantics populate this.
    source_accuracies:
        Optional estimated accuracy ``A_s`` per source; methods without
        probabilistic semantics (e.g. CATD's normalized reliability weights)
        leave this ``None`` and are excluded from Table 3 comparisons, as in
        the paper.
    method:
        Name of the producing method, e.g. ``"slimfast"`` or ``"accu"``.
    diagnostics:
        Free-form method-specific extras (iterations, learner choice,
        optimizer decision, timings, ...).

    Array-backed results are constructed with :meth:`from_rows` instead and
    expose :attr:`value_codes`, :attr:`posterior_matrix` and
    :attr:`source_accuracy_vector`; the three dict attributes above then
    behave as lazily-built cached views.
    """

    def __init__(
        self,
        values: Optional[Dict[ObjectId, Value]] = None,
        posteriors: Optional[Dict[ObjectId, Dict[Value, float]]] = None,
        source_accuracies: Optional[Dict[SourceId, float]] = None,
        method: str = "unknown",
        diagnostics: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._values = values
        self._posteriors = posteriors
        self._source_accuracies = source_accuracies
        self.method = method
        self.diagnostics: Dict[str, Any] = diagnostics if diagnostics is not None else {}

        # Array backing (None unless built by from_rows / attach_dataset).
        self._object_ids: Optional[List[ObjectId]] = None
        self._pair_values: Optional[List[Value]] = None
        self._pair_offsets: Optional[np.ndarray] = None
        self._value_codes: Optional[np.ndarray] = None
        self._posterior_store: Optional[PosteriorStore] = None
        self._posterior_matrix: Optional[np.ndarray] = None
        self._promotion_dataset: Optional[FusionDataset] = None
        self._accuracy_vector: Optional[np.ndarray] = None
        self._source_ids: Optional[List[SourceId]] = None
        # Clamped objects whose known truth is outside the claimed domain
        # cannot be represented as a value code; they carry a dict override.
        self._overrides: Dict[ObjectId, Value] = {}

        if values is None:
            raise TypeError("FusionResult requires values (or use from_rows)")

    # ------------------------------------------------------------------
    # Array-native construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        structure,
        row_probs: np.ndarray,
        clamp: Optional[Mapping[ObjectId, Value]] = None,
        accuracy_vector: Optional[np.ndarray] = None,
        source_ids: Optional[Sequence[SourceId]] = None,
        method: str = "unknown",
        diagnostics: Optional[Dict[str, Any]] = None,
    ) -> "FusionResult":
        """Build an array-backed result from flat candidate-row posteriors.

        Parameters
        ----------
        structure:
            The :class:`~repro.core.structure.PairStructure` the
            probabilities were computed over.
        row_probs:
            Posterior probability of every flattened (object, value) row
            (one segmented softmax per object, see
            :func:`repro.core.inference.posterior_rows`).
        clamp:
            Objects with known truth; their posterior row becomes a point
            mass and their value code is forced to the known value.
        accuracy_vector, source_ids:
            Estimated per-source accuracies aligned with ``source_ids``
            (typically ``model.accuracies()`` / ``model.source_ids``).

        No per-object Python structures are built here — and no dense
        matrix either: the flat ``row_probs`` become the ragged store
        directly (one O(rows) copy plus a segmented argmax), so memory
        stays ``O(rows)`` regardless of the largest domain.  The dict
        views and the dense :attr:`posterior_matrix` materialize lazily
        on first access.
        """
        # Bypass __init__: array-backed results start with no dict views
        # (the values-required check only guards the dict constructor).
        self = cls.__new__(cls)
        self._values = None
        self._posteriors = None
        self._source_accuracies = None
        self.method = method
        self.diagnostics = diagnostics if diagnostics is not None else {}
        self._overrides = {}
        self._posterior_matrix = None
        self._promotion_dataset = None

        offsets = np.asarray(structure.pair_offsets, dtype=np.int64)
        # Clamping mutates rows in place; copy so callers keep their
        # probability vector (posterior_rows output is reusable).
        probs = np.array(row_probs, dtype=float, copy=True)

        self._object_ids = list(structure.object_ids)
        self._pair_values = structure.pair_values
        self._pair_offsets = offsets

        store = PosteriorStore(offsets, probs)

        if clamp:
            labeled, truth_codes = _clamp_codes(structure, clamp)
            in_domain = labeled & (truth_codes >= 0)
            if np.any(in_domain):
                positions = np.flatnonzero(in_domain)
                store.set_point_mass(positions, truth_codes[positions])
            out_of_domain = labeled & (truth_codes < 0)
            if np.any(out_of_domain):
                positions = np.flatnonzero(out_of_domain)
                store.zero_spans(positions)
                store.value_codes[positions] = -1
                for position in positions:
                    obj = self._object_ids[int(position)]
                    self._overrides[obj] = clamp[obj]

        # Segmented argmax with first-row tie-breaking (domain order), the
        # same rule as map_assignment / map_rows; clamped point masses
        # argmax to their truth code, overrides were forced to -1 above.
        self._value_codes = store.value_codes
        self._posterior_store = store
        if accuracy_vector is not None:
            if source_ids is None:
                raise ValueError("accuracy_vector requires source_ids")
            self._accuracy_vector = np.asarray(accuracy_vector, dtype=float)
            self._source_ids = list(source_ids)
        else:
            self._accuracy_vector = None
            self._source_ids = list(source_ids) if source_ids is not None else None
        return self

    def attach_dataset(self, dataset: FusionDataset) -> "FusionResult":
        """Promote a dict-backed result to array form using ``dataset``.

        Computes :attr:`value_codes` (and, when source accuracies exist,
        :attr:`source_accuracy_vector` with ``NaN`` for unestimated
        sources) from the stored dictionaries against the dataset's
        domains, so metric evaluation over many objects runs as array
        comparisons.  Values outside an object's claimed domain (e.g. the
        open-world ``UNKNOWN`` marker) are kept as dict overrides with code
        -1.  Posteriors are **not** densified here: promotion only records
        the dataset, and the ragged :attr:`posterior_store` (or its dense
        :attr:`posterior_matrix` view) builds lazily on first access —
        metric evaluation never pays for posteriors it does not read.
        This is a one-time O(n_objects) pass; results that already carry
        arrays return unchanged, so calling it defensively (as the
        experiment harness does before scoring) is cheap.  Returns
        ``self`` for chaining.
        """
        if self._value_codes is not None:
            return self
        from .encoding import encode_dataset

        encoding = encode_dataset(dataset)
        n_objects = dataset.n_objects
        object_ids = list(dataset.objects.items)
        values = self._values or {}
        codes = np.full(n_objects, -1, dtype=np.int64)
        overrides: Dict[ObjectId, Value] = {}
        for o_idx, obj in enumerate(object_ids):
            if obj not in values:
                continue
            value = values[obj]
            code = dataset.domain_by_index(o_idx).get(value)
            if code is None:
                overrides[obj] = value
            else:
                codes[o_idx] = code

        self._object_ids = object_ids
        self._pair_values = encoding.pair_values
        self._pair_offsets = encoding.pair_offsets
        self._value_codes = codes
        self._overrides = overrides

        if self._posteriors is not None:
            # Lazy promotion: keep the dataset so posterior_store can
            # translate the dicts on first access instead of eagerly
            # materializing probabilities nobody may read.
            self._promotion_dataset = dataset

        if self._source_accuracies is not None:
            self._source_ids = list(dataset.sources.items)
            self._accuracy_vector = np.asarray(
                [self._source_accuracies.get(s, np.nan) for s in self._source_ids],
                dtype=float,
            )
        return self

    # ------------------------------------------------------------------
    # Array accessors (the hot-path API)
    # ------------------------------------------------------------------
    @property
    def has_arrays(self) -> bool:
        """Whether the result carries an array backing."""
        return self._value_codes is not None

    @property
    def value_codes(self) -> np.ndarray:
        """Per-object MAP value code into the object's domain (-1 = override).

        An ``int64`` array of shape ``(n_objects,)`` aligned with
        :attr:`object_ids`; entry ``i`` indexes into the i-th object's
        domain (first-seen claimed-value order), so decoding a code costs
        one offset lookup (:meth:`predicted_values` bulk-decodes).  Code -1
        marks objects whose value is outside the claimed domain (clamped
        unclaimed truth, open-world UNKNOWN); :attr:`overrides` holds their
        actual values.  Raises ``ValueError`` on dict-backed results — call
        :meth:`attach_dataset` first.
        """
        if self._value_codes is None:
            raise ValueError(
                "result is dict-backed; call attach_dataset(dataset) to "
                "enable array accessors"
            )
        return self._value_codes

    @property
    def posterior_store(self) -> PosteriorStore:
        """Ragged per-object posteriors (the memory-bounded accessor).

        A :class:`~repro.fusion.posterior_store.PosteriorStore` holding
        object ``i``'s distribution in rows
        ``offsets[i]:offsets[i+1]`` of its flat ``probs`` array, aligned
        with the claimed-value layout of :attr:`object_ids` /
        ``pair_values``.  Clamped objects are exact point masses on their
        truth code; override objects (value outside the claimed domain)
        have an all-zero span, with the point mass recorded in
        :attr:`overrides` instead.  Dict-backed results promoted by
        :meth:`attach_dataset` build the store lazily here on first
        access.  Raises ``ValueError`` for results without posteriors.
        """
        if self._posterior_store is None and self._posteriors is not None:
            dataset = self._promotion_dataset
            if dataset is not None and self._pair_offsets is not None:
                offsets = self._pair_offsets
                probs = np.zeros(int(offsets[-1]))
                bases = offsets[:-1].tolist()
                for o_idx, obj in enumerate(self._object_ids):
                    dist = self._posteriors.get(obj)
                    if not dist:
                        continue
                    domain = dataset.domain_by_index(o_idx)
                    base = bases[o_idx]
                    for value, prob in dist.items():
                        code = domain.get(value)
                        if code is not None:
                            probs[base + code] = prob
                self._posterior_store = PosteriorStore(offsets, probs)
        if self._posterior_store is None:
            raise ValueError(
                "result has no posterior matrix; only probabilistic "
                "array-backed results carry one"
            )
        return self._posterior_store

    @property
    def posterior_matrix(self) -> np.ndarray:
        """Dense ``(n_objects, max_domain)`` posterior matrix (lazy view).

        Row ``i`` holds ``P(T_o = d | Ω)`` over the domain codes of the
        i-th object in :attr:`object_ids`, zero-padded past ``|D_o|``.
        Since the ragged refactor this is a *view materialized from*
        :attr:`posterior_store` on first access (then cached): it warns
        (:class:`~repro.fusion.posterior_store.DenseMaterializationWarning`)
        past ``DENSE_WARN_CELLS`` and raises ``MemoryError`` past
        ``DENSE_MAX_CELLS``, so out-of-core results cannot be densified by
        accident — use the ragged store at that scale.  Only probabilistic
        results carry posteriors; otherwise ``ValueError`` is raised.
        """
        if self._posterior_matrix is None:
            self._posterior_matrix = self.posterior_store.dense()
        return self._posterior_matrix

    @property
    def source_accuracy_vector(self) -> Optional[np.ndarray]:
        """Estimated accuracy per source aligned with :attr:`source_ids`.

        A float array of shape ``(n_sources,)``, or ``None`` for methods
        without probabilistic accuracy estimates (e.g. CATD's reliability
        weights).  After :meth:`attach_dataset` promotes a dict-backed
        result, sources absent from its ``source_accuracies`` dict are
        ``NaN`` — consumers such as
        :func:`repro.extensions.selection.accuracy_vector_for` substitute a
        default for those entries.
        """
        return self._accuracy_vector

    @property
    def object_ids(self) -> List[ObjectId]:
        """Objects covered by the array backing, in array order."""
        if self._object_ids is None:
            raise ValueError("result is dict-backed; call attach_dataset(dataset)")
        return self._object_ids

    @property
    def source_ids(self) -> Optional[List[SourceId]]:
        """Sources aligned with :attr:`source_accuracy_vector`."""
        return self._source_ids

    @property
    def overrides(self) -> Dict[ObjectId, Value]:
        """Out-of-domain values keyed by object (code -1 in value_codes)."""
        return self._overrides

    @property
    def pair_offsets(self) -> np.ndarray:
        """CSR offsets over the flat claimed-value rows (array-backed only).

        ``(n_objects + 1,)`` int64 prefix sums: object ``i``'s claimed
        values occupy rows ``pair_offsets[i]:pair_offsets[i+1]`` of
        :attr:`pair_values` and of the :attr:`posterior_store`'s flat
        ``probs`` — the layout ``repro.serve`` snapshots serve from.
        Raises ``ValueError`` on dict-backed results.
        """
        if self._pair_offsets is None:
            raise ValueError("result is dict-backed; call attach_dataset(dataset)")
        return self._pair_offsets

    @property
    def pair_values(self) -> List[Value]:
        """Flat claimed values aligned with :attr:`pair_offsets` rows.

        Decoding a value code is ``pair_values[pair_offsets[i] + code]``;
        :meth:`predicted_values` bulk-decodes.  Raises ``ValueError`` on
        dict-backed results.
        """
        if self._pair_values is None:
            raise ValueError("result is dict-backed; call attach_dataset(dataset)")
        return self._pair_values

    def position_index(self) -> Dict[ObjectId, int]:
        """Object id -> position in the array backing (built once, cached)."""
        if getattr(self, "_position_index", None) is None:
            self._position_index = {obj: i for i, obj in enumerate(self.object_ids)}
        return self._position_index

    def confidence_vector(self) -> np.ndarray:
        """Posterior mass of the MAP value per object (array-backed only).

        Override objects (code -1, value clamped outside the domain) have
        confidence 1.0, matching the point-mass semantics of the dict view.
        Computed as a segmented max over the ragged store — no dense
        materialization.
        """
        confidence = self.posterior_store.max_probs()
        if self._overrides:
            index = self.position_index()
            for obj in self._overrides:
                confidence[index[obj]] = 1.0
        return confidence

    def predicted_values(self, positions: Optional[np.ndarray] = None) -> List[Value]:
        """Decode MAP value codes to values for ``positions`` (default: all)."""
        codes = self.value_codes
        offsets = self._pair_offsets
        pair_values = self._pair_values
        if positions is None:
            # Bulk decode: one vectorized row computation, one list pass.
            rows = (offsets[:-1] + np.maximum(codes, 0)).tolist()
            return [
                pair_values[row] if code >= 0 else self._overrides.get(obj)
                for obj, code, row in zip(self._object_ids, codes.tolist(), rows)
            ]
        out: List[Value] = []
        for position in positions:
            position = int(position)
            code = int(codes[position])
            if code >= 0:
                out.append(pair_values[int(offsets[position]) + code])
            else:
                out.append(self._overrides.get(self._object_ids[position]))
        return out

    # ------------------------------------------------------------------
    # Lazily-materialized cached dict views
    #
    # The dicts are *read* views: they materialize once from the arrays and
    # are cached, and mutating them in place does not write back to the
    # array backing (assigning a whole new dict through the setter does
    # drop the stale arrays).
    # ------------------------------------------------------------------
    @property
    def values(self) -> Dict[ObjectId, Value]:
        """Estimated true value per object (cached dict view)."""
        if self._values is None:
            # Raises when neither backing exists (value_codes checks).
            self._values = dict(zip(self.object_ids, self.predicted_values()))
        return self._values

    @values.setter
    def values(self, new: Dict[ObjectId, Value]) -> None:
        self._values = new
        self._value_codes = None

    @property
    def posteriors(self) -> Optional[Dict[ObjectId, Dict[Value, float]]]:
        """Posterior distribution per object (cached dict view)."""
        if self._posteriors is None and self._posterior_store is not None:
            offsets = self._pair_offsets.tolist()
            pair_values = self._pair_values
            probs_list = self._posterior_store.probs.tolist()
            result: Dict[ObjectId, Dict[Value, float]] = {}
            for i, obj in enumerate(self._object_ids):
                start, stop = offsets[i], offsets[i + 1]
                result[obj] = dict(zip(pair_values[start:stop], probs_list[start:stop]))
                override = self._overrides.get(obj)
                if override is not None:
                    result[obj][override] = 1.0
            self._posteriors = result
        return self._posteriors

    @posteriors.setter
    def posteriors(self, new: Optional[Dict[ObjectId, Dict[Value, float]]]) -> None:
        self._posteriors = new
        self._posterior_store = None
        self._posterior_matrix = None
        self._promotion_dataset = None

    @property
    def source_accuracies(self) -> Optional[Dict[SourceId, float]]:
        """Estimated accuracy per source (cached dict view)."""
        if self._source_accuracies is None and self._accuracy_vector is not None:
            self._source_accuracies = {
                source: float(acc)
                for source, acc in zip(self._source_ids, self._accuracy_vector)
            }
        return self._source_accuracies

    @source_accuracies.setter
    def source_accuracies(self, new: Optional[Dict[SourceId, float]]) -> None:
        self._source_accuracies = new
        self._accuracy_vector = None
        self._source_ids = None

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def accuracy(
        self,
        dataset: FusionDataset,
        objects: Optional[Mapping[ObjectId, Value] | list] = None,
    ) -> float:
        """Object-value accuracy against the dataset's ground truth.

        The evaluation population (``objects``, default: every object with
        ground truth) must be fully covered by the dataset's ground truth;
        objects without a known true value cannot be scored and raise
        ``ValueError`` instead of being silently counted.
        """
        population = list(objects) if objects is not None else list(dataset.ground_truth)
        missing = [obj for obj in population if obj not in dataset.ground_truth]
        if missing:
            preview = ", ".join(repr(obj) for obj in missing[:5])
            raise ValueError(
                f"{len(missing)} object(s) in the evaluation population have "
                f"no ground truth (e.g. {preview}); accuracy is only defined "
                "over labeled objects"
            )
        # The array path scores each *distinct* object once, so populations
        # with repeated objects fall back to the per-entry dict accounting.
        unique_population = len(set(population)) == len(population)
        if self._value_codes is not None and unique_population:
            encoding = getattr(dataset, "_dense_encoding", None)
            if encoding is not None and self._object_ids == dataset.objects.items:
                truth = {obj: dataset.ground_truth[obj] for obj in population}
                labeled, truth_codes = encoding.truth_codes(truth)
                # Objects with override values (code -1) fall back to a
                # direct comparison; truth outside the claimed domain can
                # still match a clamped override.
                extra = sum(
                    1
                    for obj, value in self._overrides.items()
                    if obj in truth and value == truth[obj]
                )
                return value_accuracy_from_codes(
                    self._value_codes, truth_codes, np.flatnonzero(labeled), extra
                )
        return object_value_accuracy(self.values, dataset.ground_truth, population)

    def source_error(self, dataset: FusionDataset) -> float:
        """Weighted source-accuracy estimation error (Table 3 metric).

        Raises ``ValueError`` when the method did not estimate accuracies.
        """
        if self.source_accuracies is None:
            raise ValueError(f"method {self.method!r} does not estimate source accuracies")
        return dataset_source_accuracy_error(dataset, self.source_accuracies)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = "array" if self.has_arrays else "dict"
        n = len(self._object_ids) if self._object_ids is not None else (
            len(self._values) if self._values is not None else 0
        )
        return f"FusionResult(method={self.method!r}, objects={n}, backing={backing})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FusionResult):
            return NotImplemented
        return (
            self.method == other.method
            and self.values == other.values
            and self.posteriors == other.posteriors
            and self.source_accuracies == other.source_accuracies
        )


def _clamp_codes(structure, clamp: Mapping[ObjectId, Value]):
    """(labeled mask, within-domain truth code or -1) per structure position."""
    encoding = getattr(structure, "encoding", None)
    if encoding is not None:
        labeled_all, codes_all = encoding.truth_codes(clamp)
        idx = structure.object_dataset_idx
        return labeled_all[idx], codes_all[idx]
    n = structure.n_objects
    labeled = np.zeros(n, dtype=bool)
    codes = np.full(n, -1, dtype=np.int64)
    offsets = structure.pair_offsets
    for position, obj in enumerate(structure.object_ids):
        if obj not in clamp:
            continue
        labeled[position] = True
        wanted = clamp[obj]
        start, stop = int(offsets[position]), int(offsets[position + 1])
        for row in range(start, stop):
            if structure.pair_values[row] == wanted:
                codes[position] = row - start
                break
    return labeled, codes
