"""Fusion output container shared by SLiMFast and all baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from .dataset import FusionDataset
from .metrics import dataset_source_accuracy_error, object_value_accuracy
from .types import ObjectId, SourceId, Value


@dataclass
class FusionResult:
    """Output of a data-fusion method (paper Figure 1, right side).

    Attributes
    ----------
    values:
        Estimated true value ``v_o`` for every object.
    posteriors:
        Optional posterior distribution ``P(T_o = d | Ω)`` per object; only
        methods with probabilistic semantics populate this.
    source_accuracies:
        Optional estimated accuracy ``A_s`` per source; methods without
        probabilistic semantics (e.g. CATD's normalized reliability weights)
        leave this ``None`` and are excluded from Table 3 comparisons, as in
        the paper.
    method:
        Name of the producing method, e.g. ``"slimfast"`` or ``"accu"``.
    diagnostics:
        Free-form method-specific extras (iterations, learner choice,
        optimizer decision, timings, ...).
    """

    values: Dict[ObjectId, Value]
    posteriors: Optional[Dict[ObjectId, Dict[Value, float]]] = None
    source_accuracies: Optional[Dict[SourceId, float]] = None
    method: str = "unknown"
    diagnostics: Dict[str, Any] = field(default_factory=dict)

    def accuracy(
        self, dataset: FusionDataset, objects: Optional[Mapping[ObjectId, Value] | list] = None
    ) -> float:
        """Object-value accuracy against the dataset's ground truth."""
        population = objects if objects is not None else list(dataset.ground_truth)
        return object_value_accuracy(self.values, dataset.ground_truth, population)

    def source_error(self, dataset: FusionDataset) -> float:
        """Weighted source-accuracy estimation error (Table 3 metric).

        Raises ``ValueError`` when the method did not estimate accuracies.
        """
        if self.source_accuracies is None:
            raise ValueError(f"method {self.method!r} does not estimate source accuracies")
        return dataset_source_accuracy_error(dataset, self.source_accuracies)
