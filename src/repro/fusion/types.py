"""Core value types for data fusion.

The fusion data model follows Section 2 of the paper: a set of *sources*
``S`` provide *observations* for a set of *objects* ``O``.  Each observation
``v_{o,s}`` is the value source ``s`` claims for the (single) attribute of
object ``o``.  Each object has one latent true value ``v*_o`` (single-truth
semantics).  Sources may additionally carry *domain-specific features*
(Section 3.1) which SLiMFast uses to predict their accuracy.

Identifiers for sources, objects and values are arbitrary hashable Python
objects (usually strings or ints).  Internally every algorithm works on
contiguous integer indices produced by :class:`Indexer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Optional, TypeVar

SourceId = Hashable
ObjectId = Hashable
Value = Hashable

T = TypeVar("T", bound=Hashable)


@dataclass(frozen=True)
class Observation:
    """A single claim: ``source`` asserts that ``obj`` has value ``value``.

    Attributes
    ----------
    source:
        Identifier of the reporting data source.
    obj:
        Identifier of the described object.
    value:
        The claimed value for the object's attribute.
    """

    source: SourceId
    obj: ObjectId
    value: Value

    def __iter__(self) -> Iterator[Hashable]:
        """Allow ``source, obj, value = observation`` unpacking."""
        return iter((self.source, self.obj, self.value))


class Indexer(Generic[T]):
    """Bidirectional mapping between hashable ids and dense integer indices.

    Insertion order defines index order, which makes all downstream numpy
    arrays deterministic for a given input ordering.
    """

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._index: Dict[T, int] = {}
        self._items: List[T] = []
        if items is not None:
            for item in items:
                self.add(item)

    def add(self, item: T) -> int:
        """Insert ``item`` (idempotently) and return its index."""
        idx = self._index.get(item)
        if idx is None:
            idx = len(self._items)
            self._index[item] = idx
            self._items.append(item)
        return idx

    def index(self, item: T) -> int:
        """Return the index of ``item``; raises ``KeyError`` if unknown."""
        return self._index[item]

    def get(self, item: T, default: Optional[int] = None) -> Optional[int]:
        """Return the index of ``item``, or ``default`` when unknown."""
        return self._index.get(item, default)

    def item(self, idx: int) -> T:
        """Return the item stored at integer index ``idx``."""
        return self._items[idx]

    def __contains__(self, item: object) -> bool:
        return item in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def items(self) -> List[T]:
        """All items in index order (a copy; safe to mutate)."""
        return list(self._items)


@dataclass
class DatasetStats:
    """Summary statistics of a fusion dataset, mirroring paper Table 1."""

    n_sources: int
    n_objects: int
    n_observations: int
    n_domain_features: int
    n_feature_values: int
    avg_source_accuracy: Optional[float]
    avg_observations_per_object: float
    avg_observations_per_source: float
    ground_truth_fraction: float

    def rows(self) -> List[tuple]:
        """Rows of (parameter-name, value) pairs in Table 1 order."""
        acc = "-" if self.avg_source_accuracy is None else round(self.avg_source_accuracy, 3)
        return [
            ("# Sources", self.n_sources),
            ("# Objects", self.n_objects),
            ("Available GrdTruth", f"{self.ground_truth_fraction:.0%}"),
            ("# Observations", self.n_observations),
            ("# Domain Features", self.n_domain_features),
            ("# Feature Values", self.n_feature_values),
            ("Avg. Src. Acc.", acc),
            ("Avg. Obsrvs per Obj.", round(self.avg_observations_per_object, 3)),
            ("Avg. Obsrvs per Src.", round(self.avg_observations_per_source, 3)),
        ]


class FusionError(Exception):
    """Base class for errors raised by the repro library."""


class DatasetError(FusionError, ValueError):
    """Raised when a fusion dataset is malformed or inconsistent.

    Also a :class:`ValueError`, so callers validating user-supplied
    parameters (split fractions, budgets) can catch the standard type.
    """


class NotFittedError(FusionError):
    """Raised when predictions are requested from an unfitted model."""
