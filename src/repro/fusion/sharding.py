"""Contiguous object-range sharding of a compiled candidate structure.

The vectorized E-step is a composition of *segment-local* reductions:
per-row vote scores (a ``bincount`` over each object's own observation
rows), a segmented softmax (per-object normalization), and per-source
sufficient statistics (a ``bincount`` over sources).  Because every
object's rows are contiguous in both the ``pair_*`` and ``obs_*``
layouts, slicing the structure by contiguous object range preserves each
piece **bit-for-bit**:

* a shard's vote scores equal the matching slice of the global scores
  (``bincount`` accumulates each bin's addends in input order, and a
  shard sees exactly the global order restricted to its rows);
* the segmented softmax is per-object, so shard row probabilities equal
  the global ones on the shard's rows exactly;
* only the final cross-shard *sum* of per-source statistics reorders
  floating-point additions — the one place sharded EM may differ from
  the unsharded fit, bounded by the ``atol=1e-10`` equivalence contract
  (value codes stay bit-identical; see
  ``tests/fusion/test_posterior_store.py``).

Shards are plain picklable array bundles, so a fit can fan its per-round
shard E-steps out across the existing ``ProcessPoolExecutor`` plumbing
(:class:`repro.experiments.parallel.ShardStatPool`) — each worker holds
only its shard's arrays, which is what makes single-fit EM runnable on
datasets whose full structure would crowd one process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..optim.objectives import segment_softmax


def shard_bounds(n_objects: int, n_shards: int) -> np.ndarray:
    """Contiguous, balanced object-range boundaries (``n_shards + 1``).

    Deterministic in ``(n_objects, n_shards)`` — the same rule as
    :func:`repro.experiments.parallel.chunk_indices` — and never returns
    empty ranges unless ``n_objects < n_shards``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be a positive integer, got {n_shards!r}")
    return np.linspace(0, n_objects, min(n_shards, max(n_objects, 1)) + 1).astype(np.int64)


@dataclass
class StructureShard:
    """One contiguous object range of a compiled candidate structure.

    All arrays are *rebased* to the shard: ``pair_offsets`` starts at 0,
    ``pair_object_pos`` indexes shard-local objects, ``obs_pair_idx``
    indexes shard-local rows.  ``object_start`` / ``object_stop`` locate
    the shard in the parent structure; source indices stay global, so
    per-source statistics from different shards align for the reduce.
    """

    object_start: int
    object_stop: int
    pair_start: int
    pair_stop: int
    pair_offsets: np.ndarray
    pair_object_pos: np.ndarray
    obs_source_idx: np.ndarray
    obs_pair_idx: np.ndarray
    base_scores: np.ndarray

    @property
    def n_objects(self) -> int:
        """Objects covered by the shard."""
        return self.object_stop - self.object_start

    @property
    def n_pairs(self) -> int:
        """Candidate (object, value) rows in the shard."""
        return self.pair_stop - self.pair_start

    @property
    def n_observations(self) -> int:
        """Observations whose object falls in the shard."""
        return int(self.obs_pair_idx.shape[0])

    def to_state(self) -> Dict[str, object]:
        """Flat picklable dict (arrays + ints) for cross-process transport."""
        return {
            "object_start": self.object_start,
            "object_stop": self.object_stop,
            "pair_start": self.pair_start,
            "pair_stop": self.pair_stop,
            "pair_offsets": self.pair_offsets,
            "pair_object_pos": self.pair_object_pos,
            "obs_source_idx": self.obs_source_idx,
            "obs_pair_idx": self.obs_pair_idx,
            "base_scores": self.base_scores,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "StructureShard":
        """Rebuild a shard from :meth:`to_state` output."""
        return cls(**state)


def _pair_positions(structure) -> np.ndarray:
    """Per-row object positions of a structure or encoding (duck-typed)."""
    positions = getattr(structure, "pair_object_pos", None)
    if positions is None:
        positions = structure.pair_object_idx
    return np.asarray(positions, dtype=np.int64)


def shard_structure(structure, n_shards: int) -> List[StructureShard]:
    """Slice a compiled structure into contiguous object-range shards.

    Works on any structure-shaped object carrying the CSR candidate
    layout (:class:`repro.core.structure.PairStructure` or a
    :class:`~repro.fusion.encoding.DenseEncoding`-compatible snapshot).
    Requires the observation rows to be grouped by object position in
    nondecreasing order — true of every builder in this codebase — and
    raises ``ValueError`` otherwise, because slice boundaries would split
    an object's rows across shards.
    """
    pair_offsets = np.asarray(structure.pair_offsets, dtype=np.int64)
    pair_positions = _pair_positions(structure)
    obs_pair_idx = np.asarray(structure.obs_pair_idx, dtype=np.int64)
    obs_source_idx = np.asarray(structure.obs_source_idx, dtype=np.int64)
    base_scores = np.asarray(structure.base_scores, dtype=float)
    n_objects = pair_offsets.shape[0] - 1

    obs_positions = pair_positions[obs_pair_idx]
    if obs_positions.shape[0] and np.any(np.diff(obs_positions) < 0):
        raise ValueError(
            "shard_structure requires observation rows grouped by object "
            "position; got an unsorted obs layout"
        )

    bounds = shard_bounds(n_objects, n_shards)
    obs_cuts = np.searchsorted(obs_positions, bounds, side="left")
    shards: List[StructureShard] = []
    for i in range(bounds.shape[0] - 1):
        start, stop = int(bounds[i]), int(bounds[i + 1])
        pair_start, pair_stop = int(pair_offsets[start]), int(pair_offsets[stop])
        obs_start, obs_stop = int(obs_cuts[i]), int(obs_cuts[i + 1])
        shards.append(
            StructureShard(
                object_start=start,
                object_stop=stop,
                pair_start=pair_start,
                pair_stop=pair_stop,
                pair_offsets=pair_offsets[start : stop + 1] - pair_start,
                pair_object_pos=pair_positions[pair_start:pair_stop] - start,
                obs_source_idx=obs_source_idx[obs_start:obs_stop],
                obs_pair_idx=obs_pair_idx[obs_start:obs_stop] - pair_start,
                base_scores=base_scores[pair_start:pair_stop],
            )
        )
    return shards


def shard_blocked_rows(
    shards: List[StructureShard], blocked_rows: Optional[np.ndarray]
) -> List[np.ndarray]:
    """Split a global E-step clamp plan into shard-local row indices.

    ``blocked_rows`` (sorted global row indices from
    :func:`repro.core.inference.clamp_rows`) is cut at each shard's pair
    range and rebased; ``None`` yields empty plans.
    """
    empty = np.zeros(0, dtype=np.int64)
    if blocked_rows is None or blocked_rows.size == 0:
        return [empty for _ in shards]
    blocked_rows = np.asarray(blocked_rows, dtype=np.int64)
    out: List[np.ndarray] = []
    for shard in shards:
        lo = int(np.searchsorted(blocked_rows, shard.pair_start, side="left"))
        hi = int(np.searchsorted(blocked_rows, shard.pair_stop, side="left"))
        out.append(blocked_rows[lo:hi] - shard.pair_start)
    return out


def shard_posterior_rows(shard: StructureShard, trust: np.ndarray) -> np.ndarray:
    """Posterior probability of the shard's candidate rows.

    Bit-identical to the matching slice of the global
    :func:`repro.core.inference.posterior_rows` output (see the module
    docstring for why).
    """
    scores = (
        np.bincount(
            shard.obs_pair_idx,
            weights=trust[shard.obs_source_idx],
            minlength=shard.n_pairs,
        )
        + shard.base_scores
    )
    return segment_softmax(scores, shard.pair_object_pos, shard.n_objects)


def shard_expected_stats(
    shard: StructureShard,
    trust: np.ndarray,
    n_sources: int,
    blocked_rows: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Partial per-source M-step sufficient statistics of one shard.

    Runs the shard's E-step (vote scores, fused clamp, segmented softmax)
    and collapses the per-observation soft correctness ``q`` to
    ``(totals, mass)`` vectors of length ``n_sources``: the shard's
    observation count and summed ``q`` per *global* source index.  The
    full-fit statistics are the elementwise sums over shards
    (:func:`sharded_correctness_stats`), after which the M-step proceeds
    exactly as in :func:`repro.optim.objectives.reduce_correctness_samples`.
    """
    scores = (
        np.bincount(
            shard.obs_pair_idx,
            weights=trust[shard.obs_source_idx],
            minlength=shard.n_pairs,
        )
        + shard.base_scores
    )
    if blocked_rows is not None and blocked_rows.size:
        scores[blocked_rows] = -np.inf
    probs = segment_softmax(scores, shard.pair_object_pos, shard.n_objects)
    q = probs[shard.obs_pair_idx]
    totals = np.bincount(shard.obs_source_idx, minlength=n_sources).astype(float)
    mass = np.bincount(shard.obs_source_idx, weights=q, minlength=n_sources)
    return totals, mass


def sharded_correctness_stats(
    shards: List[StructureShard],
    trust: np.ndarray,
    n_sources: int,
    blocked_per_shard: Optional[List[np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce per-shard partial statistics in shard-index order.

    The in-process counterpart of
    :meth:`repro.experiments.parallel.ShardStatPool.stats`; both reduce
    in ascending shard index, so serial and process-parallel sharded fits
    produce identical statistics.
    """
    totals = np.zeros(n_sources)
    mass = np.zeros(n_sources)
    for i, shard in enumerate(shards):
        blocked = blocked_per_shard[i] if blocked_per_shard is not None else None
        shard_totals, shard_mass = shard_expected_stats(shard, trust, n_sources, blocked)
        totals += shard_totals
        mass += shard_mass
    return totals, mass
