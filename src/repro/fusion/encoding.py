"""Dense array encoding of a fusion dataset (the vectorized engine's core).

Every hot path in the library — exact posteriors, the EM E-step, ERM
objectives and the factor-graph Gibbs sweeps — needs the same bookkeeping:
which observations describe which object, which source and claimed value
each observation carries, and the flattened (object, candidate-value) rows
the per-object softmax normalizes over.  The reference implementations
re-derive this by walking per-object dicts in Python on every call; at
paper scale (tens of thousands of observations) those walks dominate the
runtime.

:class:`DenseEncoding` compiles all of it **once** into flat NumPy index
arrays:

* a CSR-style layout of observations grouped by object
  (:attr:`~DenseEncoding.obs_offsets` row spans over the object-sorted
  :attr:`~DenseEncoding.obs_source_idx` / :attr:`~DenseEncoding.obs_value_code`
  vectors),
* the flattened candidate-pair layout (:attr:`~DenseEncoding.pair_offsets`,
  :attr:`~DenseEncoding.pair_object_idx`, :attr:`~DenseEncoding.obs_pair_idx`,
  :attr:`~DenseEncoding.base_scores`) shared with
  :class:`~repro.core.structure.PairStructure`,
* a cached design matrix per ``use_features`` flag, so repeated fits do not
  re-encode source metadata.

Consumers select the engine through a ``backend`` switch: ``"vectorized"``
(array reductions over this encoding, the default) or ``"reference"`` (the
original loop implementations, kept as the machine-checked ground truth —
see ``tests/test_vectorized_equivalence.py``).

Use :func:`encode_dataset` to obtain the encoding; it memoizes one instance
per (immutable) dataset, so the compilation cost is paid once per dataset
no matter how many learners consume it.

For append-only workloads (streams, growing feeds) recompiling the whole
encoding on every arrival is the one remaining O(dataset) step.
:class:`IncrementalEncoding` removes it: observations are appended in
batches, each append costs O(batch) amortized, and the exact
:class:`DenseEncoding` array layout is materialized lazily — bit-identical
to a cold compile of the accumulated dataset (the contract pinned in
``tests/test_incremental_encoding.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from .dataset import FusionDataset
from .features import FeatureSpace, build_design_matrix
from .types import DatasetError, Indexer, ObjectId, Observation, SourceId, Value

VALID_BACKENDS = ("vectorized", "reference")


def check_backend(backend: str) -> str:
    """Validate a ``backend`` switch value, returning it unchanged."""
    if backend not in VALID_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {VALID_BACKENDS}")
    return backend


def frozen_copy(array: np.ndarray) -> np.ndarray:
    """An owning, read-only copy of ``array``.

    Used wherever live (still-mutating) buffers are exported as snapshot
    views — the copy detaches the export from the source's lifecycle, and
    the cleared ``writeable`` flag turns any later accidental in-place
    mutation of the export into an immediate error instead of silent
    corruption.
    """
    out = np.array(array)
    out.setflags(write=False)
    return out


def expand_spans(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(start, start + length)`` for each span, vectorized.

    The workhorse of segment-wise gathers: given CSR span starts and
    lengths it produces every covered index without a Python-level loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    # Exclusive prefix sum gives each span's first output position; the
    # difference between a flat arange and that position is the offset
    # within the span.
    first_out = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(first_out, lengths)
    return np.repeat(starts, lengths) + within


class DenseEncoding:
    """One-time dense compilation of a :class:`FusionDataset`.

    All arrays are aligned either to *object-sorted observation order*
    (``obs_*``: observations grouped contiguously by object index) or to
    the *flattened candidate-pair layout* (``pair_*``: one row per distinct
    (object, claimed value) pair, objects in dataset index order).

    Attributes
    ----------
    obs_order:
        Permutation mapping object-sorted positions to the dataset's
        original observation rows (stable within an object).
    obs_offsets:
        ``(n_objects + 1,)`` CSR offsets: observations of object ``o`` live
        at sorted positions ``obs_offsets[o]:obs_offsets[o + 1]``.
    obs_object_idx, obs_source_idx, obs_value_code:
        Per object-sorted observation: its object index, source index and
        within-domain value code.
    domain_sizes:
        ``|D_o|`` per object.
    pair_offsets, pair_object_idx:
        CSR layout of candidate rows per object and its expansion.
    pair_value_code:
        Within-domain value code of each candidate row.
    obs_pair_idx:
        Candidate row each (object-sorted) observation votes for.
    log_alternatives:
        ``log(max(|D_o| - 1, 1))`` per object (multi-valued domain
        correction).
    base_scores:
        Per candidate row, ``votes * log(|D_o| - 1)`` — the fixed score
        offset of :class:`~repro.core.structure.PairStructure`.
    """

    #: Compiled index arrays, in materialization order; the unit of the
    #: picklable :meth:`export_state` snapshot and of the incremental
    #: encoding's lazily-materialized equivalent.
    ARRAY_FIELDS = (
        "obs_order",
        "obs_offsets",
        "obs_object_idx",
        "obs_source_idx",
        "obs_value_code",
        "domain_sizes",
        "pair_offsets",
        "pair_object_idx",
        "pair_value_code",
        "obs_pair_idx",
        "log_alternatives",
        "base_scores",
    )

    def __init__(self, dataset: FusionDataset) -> None:
        if dataset.n_observations == 0:
            raise ValueError(
                "cannot encode a dataset with zero observations; "
                "append observations before compiling the index arrays"
            )
        self.dataset = dataset
        n_objects = dataset.n_objects
        empty_domains = [o for o in range(n_objects) if len(dataset.domain_by_index(o)) == 0]
        if empty_domains:
            raise ValueError(
                f"cannot encode objects with an empty claimed domain "
                f"(object indices {empty_domains[:5]}); every indexed object "
                f"needs at least one observation"
            )

        object_idx = dataset.obs_object_idx
        order = np.argsort(object_idx, kind="stable")
        self.obs_order = order
        self.obs_object_idx = object_idx[order]
        self.obs_source_idx = dataset.obs_source_idx[order]
        self.obs_value_code = dataset.obs_value_idx[order]

        counts = np.bincount(object_idx, minlength=n_objects)
        self.obs_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )

        self.domain_sizes = np.asarray(
            [len(dataset.domain_by_index(o)) for o in range(n_objects)],
            dtype=np.int64,
        )
        self.pair_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self.domain_sizes, dtype=np.int64)]
        )
        self.pair_object_idx = np.repeat(np.arange(n_objects, dtype=np.int64), self.domain_sizes)
        self.pair_value_code = expand_spans(np.zeros(n_objects, dtype=np.int64), self.domain_sizes)
        self.obs_pair_idx = self.pair_offsets[self.obs_object_idx] + self.obs_value_code

        self.log_alternatives = np.log(np.maximum(self.domain_sizes - 1, 1).astype(float))
        self.base_scores = np.bincount(
            self.obs_pair_idx,
            weights=self.log_alternatives[self.obs_object_idx],
            minlength=int(self.pair_offsets[-1]),
        )

        self._pair_values: Optional[List[Value]] = None
        self._design_cache: Dict[bool, Tuple[np.ndarray, FeatureSpace]] = {}

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return self.dataset.n_objects

    @property
    def n_sources(self) -> int:
        return self.dataset.n_sources

    @property
    def n_observations(self) -> int:
        return self.dataset.n_observations

    @property
    def n_pairs(self) -> int:
        return int(self.pair_offsets[-1])

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def shard(self, n_shards: int):
        """Contiguous object-range shards of this encoding.

        The encoding carries every array :func:`repro.fusion.sharding.
        shard_structure` slices (CSR candidate layout, object-grouped
        observation rows, ``base_scores``), so an encoding can feed the
        sharded E-step directly — each returned
        :class:`~repro.fusion.sharding.StructureShard` is bit-compatible
        with the matching global slice.
        """
        from .sharding import shard_structure

        return shard_structure(self, n_shards)

    # ------------------------------------------------------------------
    # Candidate values
    # ------------------------------------------------------------------
    @property
    def pair_values(self) -> List[Value]:
        """Claimed value of every candidate row (lazily materialized)."""
        if self._pair_values is None:
            values: List[Value] = []
            for o in range(self.n_objects):
                values.extend(self.dataset.domain_by_index(o).items)
            self._pair_values = values
        return self._pair_values

    # ------------------------------------------------------------------
    # Cached design matrix
    # ------------------------------------------------------------------
    def design(self, use_features: bool = True) -> Tuple[np.ndarray, FeatureSpace]:
        """The ``|S| x |K|`` design matrix, built once per ``use_features``."""
        key = bool(use_features)
        cached = self._design_cache.get(key)
        if cached is None:
            cached = build_design_matrix(self.dataset, use_features=key)
            self._design_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Ground-truth codings
    # ------------------------------------------------------------------
    def truth_codes(self, truth: Mapping[ObjectId, Value]) -> Tuple[np.ndarray, np.ndarray]:
        """Encode a truth mapping as per-object arrays.

        Returns ``(labeled, codes)`` where ``labeled`` is a boolean mask of
        objects present in ``truth`` and ``codes`` holds the within-domain
        value code of the true value (-1 when the object is unlabeled *or*
        its true value was never claimed by any source).
        """
        labeled = np.zeros(self.n_objects, dtype=bool)
        codes = np.full(self.n_objects, -1, dtype=np.int64)
        objects = self.dataset.objects
        for obj, value in truth.items():
            o_idx = objects.get(obj)
            if o_idx is None:
                continue
            labeled[o_idx] = True
            code = self.dataset.domain_by_index(o_idx).get(value)
            if code is not None:
                codes[o_idx] = code
        return labeled, codes

    def label_rows(self, truth: Mapping[ObjectId, Value]) -> np.ndarray:
        """Candidate row of each object's true value; -1 when unavailable.

        Matches :meth:`repro.core.structure.PairStructure.label_rows` for
        the full-dataset structure.
        """
        _, codes = self.truth_codes(truth)
        rows = np.full(self.n_objects, -1, dtype=np.int64)
        claimed = codes >= 0
        rows[claimed] = self.pair_offsets[:-1][claimed] + codes[claimed]
        return rows

    # ------------------------------------------------------------------
    # Cross-process export
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Picklable snapshot of the one-time compile.

        Bundles the index arrays (:attr:`ARRAY_FIELDS`), the materialized
        candidate values and every cached design matrix, so a worker
        process can rebuild the encoding with :meth:`from_state` instead of
        paying the cold compile again.  The parallel sweep engine ships
        this once per sweep (large arrays optionally through
        ``multiprocessing.shared_memory``, see
        :mod:`repro.experiments.parallel`).
        """
        return {
            "arrays": {name: getattr(self, name) for name in self.ARRAY_FIELDS},
            "pair_values": list(self.pair_values),
            "design_cache": dict(self._design_cache),
        }

    @classmethod
    def from_state(cls, dataset: FusionDataset, state: dict) -> "DenseEncoding":
        """Rebuild an encoding from :meth:`export_state` output.

        ``dataset`` must be the dataset the state was exported from (the
        worker-side unpickled copy); no index arrays are recompiled.
        """
        dense = cls.__new__(cls)
        dense.dataset = dataset
        for name in cls.ARRAY_FIELDS:
            setattr(dense, name, state["arrays"][name])
        dense._pair_values = list(state["pair_values"])
        dense._design_cache = dict(state["design_cache"])
        return dense


def encode_dataset(dataset: FusionDataset) -> DenseEncoding:
    """Return the dataset's :class:`DenseEncoding`, compiling it on first use.

    The encoding is cached on the (immutable) dataset instance, so every
    learner, the inference engine and the Gibbs compiler share one copy.
    """
    cached = getattr(dataset, "_dense_encoding", None)
    if cached is None:
        cached = DenseEncoding(dataset)
        dataset._dense_encoding = cached
    return cached


# ----------------------------------------------------------------------
# Incremental (append-only) encoding
# ----------------------------------------------------------------------
class _AppendBuffer:
    """1-D append buffer with amortized-doubling capacity."""

    def __init__(self, dtype, capacity: int = 16) -> None:
        self._store = np.zeros(capacity, dtype=dtype)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @property
    def data(self) -> np.ndarray:
        """Writable view of the filled prefix."""
        return self._store[: self._n]

    def push(self, value) -> None:
        if self._n == self._store.shape[0]:
            fresh = np.zeros(max(4, 2 * self._store.shape[0]), dtype=self._store.dtype)
            fresh[: self._n] = self._store[: self._n]
            self._store = fresh
        self._store[self._n] = value
        self._n += 1


@dataclass
class AppendBatch:
    """Index view of one :meth:`IncrementalEncoding.append` batch.

    All arrays are aligned to the batch's arrival order and use the
    encoding's (stable) integer indexing, so consumers like the vectorized
    :class:`~repro.extensions.streaming.StreamingFuser` can process the
    batch with pure array arithmetic.

    Attributes
    ----------
    source_idx, object_idx, value_code:
        Per batch observation: its source index, object index, and
        within-domain value code.
    values:
        The raw claimed values, aligned with the arrays.
    n_new_sources, n_new_objects:
        How many sources/objects this batch introduced (their indices are
        the trailing ones).
    """

    source_idx: np.ndarray
    object_idx: np.ndarray
    value_code: np.ndarray
    values: List[Value] = field(default_factory=list)
    n_new_sources: int = 0
    n_new_objects: int = 0

    def __len__(self) -> int:
        return int(self.source_idx.shape[0])


class IncrementalEncoding:
    """Append-only counterpart of :class:`DenseEncoding`.

    Observations arrive in batches via :meth:`append`; each batch updates
    the internal index state in **O(batch) amortized** time instead of the
    O(dataset) recompile a fresh :class:`DenseEncoding` would cost:

    * source/object/value ids are interned through the same
      :class:`~repro.fusion.types.Indexer` discipline as
      :class:`~repro.fusion.dataset.FusionDataset` (arrival order defines
      index order, first-seen order defines value codes);
    * the CSR object→observation layout lives in a *slot store* where each
      object's span carries doubling capacity slack — appending to a full
      span relocates it to the store's tail and doubles it, so placement
      is amortized O(1) per observation;
    * design-matrix rows are encoded once per **new** source against a
      :class:`~repro.fusion.features.FeatureSpace` fitted up front on the
      full ``source_features`` mapping.

    The exact :class:`DenseEncoding` arrays (``obs_offsets``,
    ``obs_source_idx``, ``pair_offsets``, ``base_scores``, ...) are
    materialized lazily from the slot store and cached until the next
    append.  **Equivalence contract:** after any sequence of appends, every
    materialized array equals a cold ``DenseEncoding`` of the accumulated
    dataset — bit-identical index arrays and ``base_scores`` (same reduction
    order), design matrix within ``atol=1e-12`` (it is byte-equal in
    practice).  The contract is pinned in
    ``tests/test_incremental_encoding.py``; :meth:`rebuild` is the escape
    hatch that re-derives everything from a cold compile.

    Duplicate ``(source, object)`` claims are rejected exactly as
    :class:`~repro.fusion.dataset.FusionDataset` rejects them, so the
    accumulated stream always corresponds to a valid dataset.
    """

    def __init__(
        self,
        source_features: Optional[Mapping[SourceId, Mapping[str, object]]] = None,
        name: str = "incremental-dataset",
    ) -> None:
        self.name = name
        self.sources: Indexer[SourceId] = Indexer()
        self.objects: Indexer[ObjectId] = Indexer()
        self.source_features: Dict[SourceId, Dict[str, object]] = {
            src: dict(feats) for src, feats in (source_features or {}).items()
        }
        self._domains: List[Indexer[Value]] = []
        self._seen_pairs: set = set()
        self._n_obs = 0

        # Slot store backing the CSR spans (parallel arrays, manual doubling).
        self._store_src = np.zeros(16, dtype=np.int64)
        self._store_val = np.zeros(16, dtype=np.int64)
        self._store_row = np.zeros(16, dtype=np.int64)
        self._store_used = 0

        # Per-object span bookkeeping and domain sizes.
        self._span_start = _AppendBuffer(np.int64)
        self._span_len = _AppendBuffer(np.int64)
        self._span_cap = _AppendBuffer(np.int64)
        self._domain_sizes = _AppendBuffer(np.int64)

        # use_features flag -> [row store (capacity array), n encoded, space]
        self._design_cache: Dict[bool, List[object]] = {}

        self._snapshot: Optional[Dict[str, np.ndarray]] = None
        self._pair_values: Optional[List[Value]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: FusionDataset) -> "IncrementalEncoding":
        """Seed an incremental encoding with an existing dataset's stream."""
        encoding = cls(source_features=dataset.source_features, name=dataset.name)
        encoding.append(dataset.observations)
        return encoding

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_sources(self) -> int:
        return len(self.sources)

    @property
    def n_objects(self) -> int:
        return len(self.objects)

    @property
    def n_observations(self) -> int:
        return self._n_obs

    @property
    def n_pairs(self) -> int:
        return int(self._domain_sizes.data.sum())

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self, observations: Iterable[Observation | Tuple[SourceId, ObjectId, Value]]
    ) -> AppendBatch:
        """Ingest one batch of observations in O(batch) amortized time.

        Returns the batch's :class:`AppendBatch` index view.  An empty
        batch is a no-op.  Raises
        :class:`~repro.fusion.types.DatasetError` on a duplicate
        ``(source, object)`` claim, mirroring the dataset container.
        """
        entries: List[Observation] = [
            obs if isinstance(obs, Observation) else Observation(*obs) for obs in observations
        ]
        n_batch = len(entries)
        empty = np.zeros(0, dtype=np.int64)
        if n_batch == 0:
            return AppendBatch(source_idx=empty, object_idx=empty, value_code=empty)

        # Validate the whole batch up front so a rejected append leaves the
        # encoding untouched (appends are atomic).
        batch_pairs = set()
        for obs in entries:
            pair = (obs.source, obs.obj)
            if pair in self._seen_pairs or pair in batch_pairs:
                raise DatasetError(
                    f"duplicate observation for source={obs.source!r} obj={obs.obj!r}"
                )
            batch_pairs.add(pair)

        n_sources_before = len(self.sources)
        n_objects_before = len(self.objects)
        source_idx = np.empty(n_batch, dtype=np.int64)
        object_idx = np.empty(n_batch, dtype=np.int64)
        value_code = np.empty(n_batch, dtype=np.int64)
        values: List[Value] = []
        domain_sizes = None
        for i, obs in enumerate(entries):
            self._seen_pairs.add((obs.source, obs.obj))
            s_idx = self.sources.add(obs.source)
            o_idx = self.objects.add(obs.obj)
            if o_idx == len(self._domains):
                self._domains.append(Indexer())
                self._span_start.push(0)
                self._span_len.push(0)
                self._span_cap.push(0)
                self._domain_sizes.push(0)
                domain_sizes = None  # pushes may reallocate the buffer
            code = self._domains[o_idx].add(obs.value)
            if domain_sizes is None:
                domain_sizes = self._domain_sizes.data
            if code == domain_sizes[o_idx]:
                domain_sizes[o_idx] += 1
            source_idx[i] = s_idx
            object_idx[i] = o_idx
            value_code[i] = code
            values.append(obs.value)

        self._place(object_idx, source_idx, value_code, first_row=self._n_obs)
        self._n_obs += n_batch
        self._snapshot = None
        self._pair_values = None
        return AppendBatch(
            source_idx=source_idx,
            object_idx=object_idx,
            value_code=value_code,
            values=values,
            n_new_sources=len(self.sources) - n_sources_before,
            n_new_objects=len(self.objects) - n_objects_before,
        )

    def _place(
        self,
        object_idx: np.ndarray,
        source_idx: np.ndarray,
        value_code: np.ndarray,
        first_row: int,
    ) -> None:
        """Write a batch into the slot store, relocating overfull spans."""
        touched, counts = np.unique(object_idx, return_counts=True)
        start = self._span_start.data
        length = self._span_len.data
        cap = self._span_cap.data
        for o, count in zip(touched.tolist(), counts.tolist()):
            need = int(length[o]) + count
            if need <= cap[o]:
                continue
            new_cap = max(4, 2 * int(cap[o]), need)
            self._reserve_store(new_cap)
            new_start = self._store_used
            if length[o]:
                src = slice(int(start[o]), int(start[o] + length[o]))
                dst = slice(new_start, new_start + int(length[o]))
                self._store_src[dst] = self._store_src[src]
                self._store_val[dst] = self._store_val[src]
                self._store_row[dst] = self._store_row[src]
            start[o] = new_start
            cap[o] = new_cap
            self._store_used = new_start + new_cap

        # Stable within-batch order keeps each span in arrival order, the
        # same order the cold compile's stable argsort produces.
        order = np.argsort(object_idx, kind="stable")
        sorted_objects = object_idx[order]
        n_batch = order.shape[0]
        group_first = np.flatnonzero(
            np.concatenate([[True], sorted_objects[1:] != sorted_objects[:-1]])
        )
        group_sizes = np.diff(np.concatenate([group_first, [n_batch]]))
        within = np.arange(n_batch, dtype=np.int64) - np.repeat(group_first, group_sizes)
        slots = start[sorted_objects] + length[sorted_objects] + within
        self._store_src[slots] = source_idx[order]
        self._store_val[slots] = value_code[order]
        self._store_row[slots] = first_row + order
        length[touched] += counts

    def _reserve_store(self, extra: int) -> None:
        need = self._store_used + extra
        capacity = self._store_src.shape[0]
        if need <= capacity:
            return
        new_capacity = max(2 * capacity, need)
        for attr in ("_store_src", "_store_val", "_store_row"):
            old = getattr(self, attr)
            fresh = np.zeros(new_capacity, dtype=np.int64)
            fresh[: self._store_used] = old[: self._store_used]
            setattr(self, attr, fresh)

    # ------------------------------------------------------------------
    # Materialized snapshot (exact DenseEncoding layout)
    # ------------------------------------------------------------------
    def _materialize(self) -> Dict[str, np.ndarray]:
        if self._snapshot is not None:
            return self._snapshot
        if self._n_obs == 0:
            raise ValueError(
                "cannot encode a dataset with zero observations; "
                "append observations before compiling the index arrays"
            )
        n_objects = len(self.objects)
        start = self._span_start.data
        length = self._span_len.data
        positions = expand_spans(start, length)
        obs_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(length, dtype=np.int64)]
        )
        obs_object_idx = np.repeat(np.arange(n_objects, dtype=np.int64), length)
        obs_source_idx = self._store_src[positions]
        obs_value_code = self._store_val[positions]
        obs_order = self._store_row[positions]

        domain_sizes = self._domain_sizes.data.copy()
        pair_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(domain_sizes, dtype=np.int64)]
        )
        pair_object_idx = np.repeat(np.arange(n_objects, dtype=np.int64), domain_sizes)
        pair_value_code = expand_spans(np.zeros(n_objects, dtype=np.int64), domain_sizes)
        obs_pair_idx = pair_offsets[obs_object_idx] + obs_value_code
        log_alternatives = np.log(np.maximum(domain_sizes - 1, 1).astype(float))
        # Same bincount over the same object-sorted order as the cold
        # compile, so the float accumulation is bit-identical.
        base_scores = np.bincount(
            obs_pair_idx,
            weights=log_alternatives[obs_object_idx],
            minlength=int(pair_offsets[-1]),
        )
        self._snapshot = {
            "obs_order": obs_order,
            "obs_offsets": obs_offsets,
            "obs_object_idx": obs_object_idx,
            "obs_source_idx": obs_source_idx,
            "obs_value_code": obs_value_code,
            "domain_sizes": domain_sizes,
            "pair_offsets": pair_offsets,
            "pair_object_idx": pair_object_idx,
            "pair_value_code": pair_value_code,
            "obs_pair_idx": obs_pair_idx,
            "log_alternatives": log_alternatives,
            "base_scores": base_scores,
        }
        return self._snapshot

    obs_order = property(lambda self: self._materialize()["obs_order"])
    obs_offsets = property(lambda self: self._materialize()["obs_offsets"])
    obs_object_idx = property(lambda self: self._materialize()["obs_object_idx"])
    obs_source_idx = property(lambda self: self._materialize()["obs_source_idx"])
    obs_value_code = property(lambda self: self._materialize()["obs_value_code"])
    domain_sizes = property(lambda self: self._materialize()["domain_sizes"])
    pair_offsets = property(lambda self: self._materialize()["pair_offsets"])
    pair_object_idx = property(lambda self: self._materialize()["pair_object_idx"])
    pair_value_code = property(lambda self: self._materialize()["pair_value_code"])
    obs_pair_idx = property(lambda self: self._materialize()["obs_pair_idx"])
    log_alternatives = property(lambda self: self._materialize()["log_alternatives"])
    base_scores = property(lambda self: self._materialize()["base_scores"])

    @property
    def pair_values(self) -> List[Value]:
        """Claimed value of every candidate row (lazily materialized)."""
        if self._pair_values is None:
            values: List[Value] = []
            for domain in self._domains:
                values.extend(domain.items)
            self._pair_values = values
        return self._pair_values

    @property
    def object_ids(self) -> List[ObjectId]:
        """All object ids in index order."""
        return self.objects.items

    def domain_by_index(self, o_idx: int) -> Indexer[Value]:
        """Domain indexer for the object with integer index ``o_idx``."""
        return self._domains[o_idx]

    @property
    def live_domain_sizes(self) -> np.ndarray:
        """Per-object domain sizes, read from the live append state.

        Unlike :attr:`domain_sizes` this never materializes the snapshot,
        so O(batch) consumers (the vectorized streaming fuser) can read it
        on every batch.  The returned view is only valid until the next
        append.
        """
        return self._domain_sizes.data

    def object_claims(self, o_idx: int, with_rows: bool = False):
        """``(source_idx, value_code[, arrival_row])`` of one object's claims.

        Claims come back in arrival order.  Reads the live span directly
        (no snapshot materialization); the arrays are copies and remain
        valid across appends.
        """
        start = int(self._span_start.data[o_idx])
        length = int(self._span_len.data[o_idx])
        span = slice(start, start + length)
        if with_rows:
            return (
                self._store_src[span].copy(),
                self._store_val[span].copy(),
                self._store_row[span].copy(),
            )
        return self._store_src[span].copy(), self._store_val[span].copy()

    # ------------------------------------------------------------------
    # Cached design matrix
    # ------------------------------------------------------------------
    def design(self, use_features: bool = True) -> Tuple[np.ndarray, FeatureSpace]:
        """The current ``|S| x |K|`` design matrix, extended per new source.

        The :class:`FeatureSpace` is fitted once on the full
        ``source_features`` mapping (same metadata a cold
        :func:`~repro.fusion.features.build_design_matrix` would see), so
        appending sources only encodes their new rows.
        """
        key = bool(use_features)
        cached = self._design_cache.get(key)
        if cached is None:
            if key:
                space = FeatureSpace().fit(self.source_features)
            else:
                space = FeatureSpace.empty()
            rows = np.zeros((max(self.n_sources, 8), space.n_columns), dtype=float)
            cached = [rows, 0, space]
            self._design_cache[key] = cached
        rows, n_encoded, space = cached
        n_sources = self.n_sources
        if n_encoded < n_sources:
            if n_sources > rows.shape[0]:
                fresh = np.zeros((max(2 * rows.shape[0], n_sources), rows.shape[1]))
                fresh[:n_encoded] = rows[:n_encoded]
                rows = fresh
                cached[0] = rows
            if key:
                items = self.sources.items
                for s_idx in range(n_encoded, n_sources):
                    feats = self.source_features.get(items[s_idx])
                    if feats:
                        rows[s_idx] = space.transform_one(feats)
            cached[1] = n_sources
        return rows[:n_sources], space

    # ------------------------------------------------------------------
    # Ground-truth codings (DenseEncoding-compatible)
    # ------------------------------------------------------------------
    def truth_codes(self, truth: Mapping[ObjectId, Value]) -> Tuple[np.ndarray, np.ndarray]:
        """Encode a truth mapping as per-object arrays.

        Same semantics as :meth:`DenseEncoding.truth_codes`, evaluated
        against the incrementally-maintained indexers.
        """
        labeled = np.zeros(self.n_objects, dtype=bool)
        codes = np.full(self.n_objects, -1, dtype=np.int64)
        for obj, value in truth.items():
            o_idx = self.objects.get(obj)
            if o_idx is None:
                continue
            labeled[o_idx] = True
            code = self._domains[o_idx].get(value)
            if code is not None:
                codes[o_idx] = code
        return labeled, codes

    def label_rows(self, truth: Mapping[ObjectId, Value]) -> np.ndarray:
        """Candidate row of each object's true value; -1 when unavailable."""
        _, codes = self.truth_codes(truth)
        rows = np.full(self.n_objects, -1, dtype=np.int64)
        claimed = codes >= 0
        rows[claimed] = self.pair_offsets[:-1][claimed] + codes[claimed]
        return rows

    # ------------------------------------------------------------------
    # Export and the rebuild escape hatch
    # ------------------------------------------------------------------
    def observations(self) -> List[Observation]:
        """The accumulated observations in arrival order."""
        snapshot = self._materialize()
        by_row_source = np.empty(self._n_obs, dtype=np.int64)
        by_row_object = np.empty(self._n_obs, dtype=np.int64)
        by_row_value = np.empty(self._n_obs, dtype=np.int64)
        rows = snapshot["obs_order"]
        by_row_source[rows] = snapshot["obs_source_idx"]
        by_row_object[rows] = snapshot["obs_object_idx"]
        by_row_value[rows] = snapshot["obs_value_code"]
        source_items = self.sources.items
        object_items = self.objects.items
        return [
            Observation(source_items[s], object_items[o], self._domains[o].item(v))
            for s, o, v in zip(
                by_row_source.tolist(), by_row_object.tolist(), by_row_value.tolist()
            )
        ]

    def to_dataset(
        self,
        ground_truth: Optional[Mapping[ObjectId, Value]] = None,
        true_accuracies: Optional[Mapping[SourceId, float]] = None,
        attach_encoding: bool = True,
    ) -> FusionDataset:
        """Materialize the accumulated stream as a :class:`FusionDataset`.

        With ``attach_encoding=True`` (default) the dataset's cached
        :class:`DenseEncoding` is fabricated from the incremental snapshot
        arrays, so downstream learners skip the cold index compile (only
        the O(dataset) container walk remains).
        """
        dataset = FusionDataset(
            self.observations(),
            ground_truth=ground_truth,
            source_features=self.source_features,
            true_accuracies=true_accuracies,
            name=self.name,
        )
        if attach_encoding:
            dataset._dense_encoding = self.as_dense(dataset)
        return dataset

    def as_dense(self, dataset: FusionDataset) -> DenseEncoding:
        """Fabricate a :class:`DenseEncoding` from the snapshot arrays.

        ``dataset`` must be the materialized accumulated dataset (see
        :meth:`to_dataset`); no index arrays are recompiled.  Every
        exported array is a frozen (read-only) **copy**: the fabricated
        encoding must stay a faithful snapshot of the stream at export
        time, so it cannot alias the live snapshot/design buffers that
        later ``append``/``design`` calls mutate or recycle (the aliasing
        hazard is pinned in ``tests/test_incremental_encoding.py``).
        """
        snapshot = self._materialize()
        dense = DenseEncoding.__new__(DenseEncoding)
        dense.dataset = dataset
        for name, array in snapshot.items():
            setattr(dense, name, frozen_copy(array))
        dense._pair_values = list(self.pair_values)
        dense._design_cache = {
            key: (frozen_copy(self.design(key)[0]), self._design_cache[key][2])
            for key in self._design_cache
        }
        return dense

    def dataset_view(self) -> "EncodingDatasetView":
        """O(1) dataset-shaped facade over the live encoding state.

        The container fast path for periodic batch re-fits: exposes the
        sizes, indexers, domains and source features the vectorized
        learners read when every derived artifact (structure, design,
        label plans) is supplied explicitly — without the O(n)
        ``observations()`` walk :meth:`to_dataset` pays.  See
        :func:`repro.core.em.fit_incremental`.
        """
        return EncodingDatasetView(self)

    def rebuild(self) -> DenseEncoding:
        """Cold-recompile the accumulated dataset from scratch.

        The escape hatch for suspected stale incremental state: the
        accumulated observations are re-encoded by a fresh
        :class:`DenseEncoding`, whose arrays replace the cached snapshot.
        Returns the fresh encoding.
        """
        dataset = self.to_dataset(attach_encoding=False)
        fresh = DenseEncoding(dataset)
        self._snapshot = {
            "obs_order": fresh.obs_order,
            "obs_offsets": fresh.obs_offsets,
            "obs_object_idx": fresh.obs_object_idx,
            "obs_source_idx": fresh.obs_source_idx,
            "obs_value_code": fresh.obs_value_code,
            "domain_sizes": fresh.domain_sizes,
            "pair_offsets": fresh.pair_offsets,
            "pair_object_idx": fresh.pair_object_idx,
            "pair_value_code": fresh.pair_value_code,
            "obs_pair_idx": fresh.obs_pair_idx,
            "log_alternatives": fresh.log_alternatives,
            "base_scores": fresh.base_scores,
        }
        self._pair_values = fresh.pair_values
        return fresh


class EncodingDatasetView:
    """Read-only :class:`FusionDataset` facade over an incremental encoding.

    Implements exactly the container surface the vectorized learners touch
    when a prebuilt structure, design matrix and label plans are passed in:
    the size properties, the source/object indexers, the per-object domain
    lookup and the source-feature mapping.  Construction is O(1) — nothing
    is walked or copied — which is what lets
    :func:`repro.core.em.fit_incremental` re-fit over a growing stream
    without materializing the accumulated observation list on every
    re-anchor.

    The view is *live*: it reads the encoding's current state, so it should
    be consumed before the next append.  Anything needing the full
    container (ground-truth bookkeeping, observation walks, reference
    backends) should use :meth:`IncrementalEncoding.to_dataset` instead;
    attribute errors on this view mean exactly that.
    """

    def __init__(self, encoding: IncrementalEncoding) -> None:
        self._encoding = encoding
        self.name = encoding.name

    @property
    def sources(self) -> Indexer[SourceId]:
        return self._encoding.sources

    @property
    def objects(self) -> Indexer[ObjectId]:
        return self._encoding.objects

    @property
    def source_features(self) -> Dict[SourceId, Dict[str, object]]:
        return self._encoding.source_features

    @property
    def n_sources(self) -> int:
        return self._encoding.n_sources

    @property
    def n_objects(self) -> int:
        return self._encoding.n_objects

    @property
    def n_observations(self) -> int:
        return self._encoding.n_observations

    def domain_by_index(self, o_idx: int) -> Indexer[Value]:
        """Domain indexer for the object with integer index ``o_idx``."""
        return self._encoding.domain_by_index(o_idx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EncodingDatasetView(name={self.name!r}, sources={self.n_sources}, "
            f"objects={self.n_objects}, observations={self.n_observations})"
        )
