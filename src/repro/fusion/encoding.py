"""Dense array encoding of a fusion dataset (the vectorized engine's core).

Every hot path in the library — exact posteriors, the EM E-step, ERM
objectives and the factor-graph Gibbs sweeps — needs the same bookkeeping:
which observations describe which object, which source and claimed value
each observation carries, and the flattened (object, candidate-value) rows
the per-object softmax normalizes over.  The reference implementations
re-derive this by walking per-object dicts in Python on every call; at
paper scale (tens of thousands of observations) those walks dominate the
runtime.

:class:`DenseEncoding` compiles all of it **once** into flat NumPy index
arrays:

* a CSR-style layout of observations grouped by object
  (:attr:`~DenseEncoding.obs_offsets` row spans over the object-sorted
  :attr:`~DenseEncoding.obs_source_idx` / :attr:`~DenseEncoding.obs_value_code`
  vectors),
* the flattened candidate-pair layout (:attr:`~DenseEncoding.pair_offsets`,
  :attr:`~DenseEncoding.pair_object_idx`, :attr:`~DenseEncoding.obs_pair_idx`,
  :attr:`~DenseEncoding.base_scores`) shared with
  :class:`~repro.core.structure.PairStructure`,
* a cached design matrix per ``use_features`` flag, so repeated fits do not
  re-encode source metadata.

Consumers select the engine through a ``backend`` switch: ``"vectorized"``
(array reductions over this encoding, the default) or ``"reference"`` (the
original loop implementations, kept as the machine-checked ground truth —
see ``tests/test_vectorized_equivalence.py``).

Use :func:`encode_dataset` to obtain the encoding; it memoizes one instance
per (immutable) dataset, so the compilation cost is paid once per dataset
no matter how many learners consume it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .dataset import FusionDataset
from .features import FeatureSpace, build_design_matrix
from .types import ObjectId, Value

VALID_BACKENDS = ("vectorized", "reference")


def check_backend(backend: str) -> str:
    """Validate a ``backend`` switch value, returning it unchanged."""
    if backend not in VALID_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {VALID_BACKENDS}")
    return backend


def expand_spans(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(start, start + length)`` for each span, vectorized.

    The workhorse of segment-wise gathers: given CSR span starts and
    lengths it produces every covered index without a Python-level loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    # Exclusive prefix sum gives each span's first output position; the
    # difference between a flat arange and that position is the offset
    # within the span.
    first_out = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(first_out, lengths)
    return np.repeat(starts, lengths) + within


class DenseEncoding:
    """One-time dense compilation of a :class:`FusionDataset`.

    All arrays are aligned either to *object-sorted observation order*
    (``obs_*``: observations grouped contiguously by object index) or to
    the *flattened candidate-pair layout* (``pair_*``: one row per distinct
    (object, claimed value) pair, objects in dataset index order).

    Attributes
    ----------
    obs_order:
        Permutation mapping object-sorted positions to the dataset's
        original observation rows (stable within an object).
    obs_offsets:
        ``(n_objects + 1,)`` CSR offsets: observations of object ``o`` live
        at sorted positions ``obs_offsets[o]:obs_offsets[o + 1]``.
    obs_object_idx, obs_source_idx, obs_value_code:
        Per object-sorted observation: its object index, source index and
        within-domain value code.
    domain_sizes:
        ``|D_o|`` per object.
    pair_offsets, pair_object_idx:
        CSR layout of candidate rows per object and its expansion.
    pair_value_code:
        Within-domain value code of each candidate row.
    obs_pair_idx:
        Candidate row each (object-sorted) observation votes for.
    log_alternatives:
        ``log(max(|D_o| - 1, 1))`` per object (multi-valued domain
        correction).
    base_scores:
        Per candidate row, ``votes * log(|D_o| - 1)`` — the fixed score
        offset of :class:`~repro.core.structure.PairStructure`.
    """

    def __init__(self, dataset: FusionDataset) -> None:
        self.dataset = dataset
        n_objects = dataset.n_objects

        object_idx = dataset.obs_object_idx
        order = np.argsort(object_idx, kind="stable")
        self.obs_order = order
        self.obs_object_idx = object_idx[order]
        self.obs_source_idx = dataset.obs_source_idx[order]
        self.obs_value_code = dataset.obs_value_idx[order]

        counts = np.bincount(object_idx, minlength=n_objects)
        self.obs_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )

        self.domain_sizes = np.asarray(
            [len(dataset.domain_by_index(o)) for o in range(n_objects)],
            dtype=np.int64,
        )
        self.pair_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self.domain_sizes, dtype=np.int64)]
        )
        self.pair_object_idx = np.repeat(np.arange(n_objects, dtype=np.int64), self.domain_sizes)
        self.pair_value_code = expand_spans(np.zeros(n_objects, dtype=np.int64), self.domain_sizes)
        self.obs_pair_idx = self.pair_offsets[self.obs_object_idx] + self.obs_value_code

        self.log_alternatives = np.log(np.maximum(self.domain_sizes - 1, 1).astype(float))
        self.base_scores = np.bincount(
            self.obs_pair_idx,
            weights=self.log_alternatives[self.obs_object_idx],
            minlength=int(self.pair_offsets[-1]),
        )

        self._pair_values: Optional[List[Value]] = None
        self._design_cache: Dict[bool, Tuple[np.ndarray, FeatureSpace]] = {}

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return self.dataset.n_objects

    @property
    def n_sources(self) -> int:
        return self.dataset.n_sources

    @property
    def n_observations(self) -> int:
        return self.dataset.n_observations

    @property
    def n_pairs(self) -> int:
        return int(self.pair_offsets[-1])

    # ------------------------------------------------------------------
    # Candidate values
    # ------------------------------------------------------------------
    @property
    def pair_values(self) -> List[Value]:
        """Claimed value of every candidate row (lazily materialized)."""
        if self._pair_values is None:
            values: List[Value] = []
            for o in range(self.n_objects):
                values.extend(self.dataset.domain_by_index(o).items)
            self._pair_values = values
        return self._pair_values

    # ------------------------------------------------------------------
    # Cached design matrix
    # ------------------------------------------------------------------
    def design(self, use_features: bool = True) -> Tuple[np.ndarray, FeatureSpace]:
        """The ``|S| x |K|`` design matrix, built once per ``use_features``."""
        key = bool(use_features)
        cached = self._design_cache.get(key)
        if cached is None:
            cached = build_design_matrix(self.dataset, use_features=key)
            self._design_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Ground-truth codings
    # ------------------------------------------------------------------
    def truth_codes(self, truth: Mapping[ObjectId, Value]) -> Tuple[np.ndarray, np.ndarray]:
        """Encode a truth mapping as per-object arrays.

        Returns ``(labeled, codes)`` where ``labeled`` is a boolean mask of
        objects present in ``truth`` and ``codes`` holds the within-domain
        value code of the true value (-1 when the object is unlabeled *or*
        its true value was never claimed by any source).
        """
        labeled = np.zeros(self.n_objects, dtype=bool)
        codes = np.full(self.n_objects, -1, dtype=np.int64)
        objects = self.dataset.objects
        for obj, value in truth.items():
            o_idx = objects.get(obj)
            if o_idx is None:
                continue
            labeled[o_idx] = True
            code = self.dataset.domain_by_index(o_idx).get(value)
            if code is not None:
                codes[o_idx] = code
        return labeled, codes

    def label_rows(self, truth: Mapping[ObjectId, Value]) -> np.ndarray:
        """Candidate row of each object's true value; -1 when unavailable.

        Matches :meth:`repro.core.structure.PairStructure.label_rows` for
        the full-dataset structure.
        """
        _, codes = self.truth_codes(truth)
        rows = np.full(self.n_objects, -1, dtype=np.int64)
        claimed = codes >= 0
        rows[claimed] = self.pair_offsets[:-1][claimed] + codes[claimed]
        return rows


def encode_dataset(dataset: FusionDataset) -> DenseEncoding:
    """Return the dataset's :class:`DenseEncoding`, compiling it on first use.

    The encoding is cached on the (immutable) dataset instance, so every
    learner, the inference engine and the Gibbs compiler share one copy.
    """
    cached = getattr(dataset, "_dense_encoding", None)
    if cached is None:
        cached = DenseEncoding(dataset)
        dataset._dense_encoding = cached
    return cached
