"""Fusion data model: datasets, features, metrics and result containers."""

from .dataset import FusionDataset, Split, subset_sources
from .encoding import AppendBatch, DenseEncoding, IncrementalEncoding, encode_dataset
from .features import FeatureColumn, FeatureSpace, FeatureSpec, build_design_matrix
from .metrics import (
    bernoulli_kl,
    binary_entropy,
    dataset_source_accuracy_error,
    log_loss,
    mean_accuracy_kl,
    object_value_accuracy,
    source_accuracy_error,
)
from .posterior_store import DenseMaterializationWarning, PosteriorStore
from .result import FusionResult
from .sharding import StructureShard, shard_structure
from .types import (
    DatasetError,
    DatasetStats,
    FusionError,
    Indexer,
    NotFittedError,
    ObjectId,
    Observation,
    SourceId,
    Value,
)

__all__ = [
    "FusionDataset",
    "Split",
    "subset_sources",
    "DenseEncoding",
    "IncrementalEncoding",
    "AppendBatch",
    "encode_dataset",
    "FeatureSpace",
    "FeatureSpec",
    "FeatureColumn",
    "build_design_matrix",
    "FusionResult",
    "PosteriorStore",
    "DenseMaterializationWarning",
    "StructureShard",
    "shard_structure",
    "Observation",
    "Indexer",
    "DatasetStats",
    "FusionError",
    "DatasetError",
    "NotFittedError",
    "SourceId",
    "ObjectId",
    "Value",
    "object_value_accuracy",
    "source_accuracy_error",
    "dataset_source_accuracy_error",
    "bernoulli_kl",
    "mean_accuracy_kl",
    "binary_entropy",
    "log_loss",
]
