"""Ragged (CSR) posterior storage for fusion results.

The dense ``(n_objects, max_domain)`` posterior matrix the array-native
refactor introduced is a memory wall: one object with a huge claimed
domain inflates *every* row to ``max_domain`` columns, so a skewed
million-observation dataset can demand tens of gigabytes for posteriors
whose actual support is a few rows per object.  This module stores the
same posteriors the way :class:`~repro.fusion.encoding.DenseEncoding`
already stores claims — a CSR-style ragged layout:

* ``offsets`` — ``(n_objects + 1,)`` int64 prefix sums; object ``i``'s
  posterior lives in rows ``offsets[i]:offsets[i+1]`` of the flat arrays.
* ``probs`` — flat float array, one probability per (object, value) row,
  aligned with the encoding's ``pair_values`` layout.
* ``value_codes`` — per-object MAP code into the object's domain
  (segmented argmax with first-row tie-breaking, the same rule as
  :func:`repro.core.inference.map_rows`); ``-1`` marks objects whose
  value is overridden outside the claimed domain.

Memory is ``O(total claimed values)`` instead of
``O(n_objects * max_domain)``.  A dense view is still available through
:meth:`PosteriorStore.dense`, but it is guarded: materializations past
``DENSE_WARN_CELLS`` warn (:class:`DenseMaterializationWarning`) and past
``DENSE_MAX_CELLS`` raise ``MemoryError`` — out-of-core callers must stay
on the ragged accessors.  The flat arrays can round-trip through ``.npy``
files and attach as ``numpy.memmap`` views (:meth:`PosteriorStore.save` /
:meth:`PosteriorStore.load`) so posteriors larger than RAM can be served
from disk.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

import numpy as np

from .encoding import expand_spans

#: Dense materializations above this many cells emit a
#: :class:`DenseMaterializationWarning` (~80 MB of float64).
DENSE_WARN_CELLS = 10_000_000

#: Dense materializations above this many cells raise ``MemoryError``
#: (~1.6 GB of float64); out-of-core paths must use the ragged accessors.
DENSE_MAX_CELLS = 200_000_000

_STORE_FILES = ("offsets", "probs", "value_codes")


class DenseMaterializationWarning(UserWarning):
    """A guarded dense posterior view is large enough to hurt."""


def segmented_argmax(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment argmax (as within-segment codes) with first-row ties.

    Segment ``i`` spans ``values[offsets[i]:offsets[i+1]]``; ties break
    toward the earliest row, matching ``np.argmax`` on zero-padded dense
    rows and :func:`repro.core.inference.map_rows`.  Empty segments get
    code 0 (the dense convention for an all-zero row).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n_segments = offsets.shape[0] - 1
    lengths = offsets[1:] - offsets[:-1]
    if n_segments == 0:
        return np.zeros(0, dtype=np.int64)
    segment_idx = np.repeat(np.arange(n_segments, dtype=np.int64), lengths)
    seg_max = np.full(n_segments, -np.inf)
    np.maximum.at(seg_max, segment_idx, values)
    best_row = np.full(n_segments, np.iinfo(np.int64).max, dtype=np.int64)
    maximal = np.flatnonzero(values >= seg_max[segment_idx])
    np.minimum.at(best_row, segment_idx[maximal], maximal)
    codes = best_row - offsets[:-1]
    codes[lengths == 0] = 0
    return codes


class PosteriorStore:
    """Ragged per-object posterior distributions (CSR layout).

    Parameters
    ----------
    offsets:
        ``(n_objects + 1,)`` int64 prefix sums over the flat rows.
    probs:
        Flat probabilities, one per (object, value) row; may be a
        ``numpy.memmap`` for posteriors served from disk.
    value_codes:
        Optional precomputed per-object MAP codes (``-1`` = override).
        When omitted they are derived lazily by :func:`segmented_argmax`
        on first access.
    """

    def __init__(
        self,
        offsets: np.ndarray,
        probs: np.ndarray,
        value_codes: Optional[np.ndarray] = None,
    ) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.shape[0] < 1:
            raise ValueError("offsets must be a 1-D prefix-sum array of length n_objects + 1")
        # memmap inputs pass through np.asarray unchanged (no copy, no
        # dtype cast needed: save() wrote float64/int64).
        self.probs = probs if isinstance(probs, np.memmap) else np.asarray(probs, dtype=float)
        if self.probs.shape[0] != int(self.offsets[-1]):
            raise ValueError(
                f"probs has {self.probs.shape[0]} rows but offsets cover {int(self.offsets[-1])}"
            )
        self._value_codes = (
            None if value_codes is None else np.asarray(value_codes, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        """Number of objects covered by the store."""
        return self.offsets.shape[0] - 1

    @property
    def n_rows(self) -> int:
        """Total flat (object, value) rows."""
        return int(self.offsets[-1])

    @property
    def domain_sizes(self) -> np.ndarray:
        """Per-object row counts (``|D_o|``)."""
        return self.offsets[1:] - self.offsets[:-1]

    @property
    def max_domain(self) -> int:
        """Largest per-object domain (the dense view's column count)."""
        return int(self.domain_sizes.max()) if self.n_objects else 0

    @property
    def nbytes(self) -> int:
        """Bytes held by the ragged arrays (codes counted when present)."""
        total = self.offsets.nbytes + self.probs.nbytes
        if self._value_codes is not None:
            total += self._value_codes.nbytes
        return total

    def dense_cells(self) -> int:
        """Cell count a dense ``(n_objects, max_domain)`` view would need."""
        return self.n_objects * self.max_domain

    def dense_nbytes(self) -> int:
        """Projected bytes of the dense view (float64 cells)."""
        return self.dense_cells() * 8

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def value_codes(self) -> np.ndarray:
        """Per-object MAP value code (first-row ties, -1 = override)."""
        if self._value_codes is None:
            self._value_codes = segmented_argmax(self.probs, self.offsets)
        return self._value_codes

    def row(self, position: int) -> np.ndarray:
        """Posterior probabilities of one object's rows (a view)."""
        start, stop = int(self.offsets[position]), int(self.offsets[position + 1])
        return self.probs[start:stop]

    def max_probs(self) -> np.ndarray:
        """Per-object maximum posterior mass (MAP confidence).

        Objects with no rows (or all-zero override rows) report their raw
        segment maximum — 0.0 for a zeroed span — matching
        ``np.max(dense, axis=1)``; empty segments report 0.0.
        """
        lengths = self.domain_sizes
        segment_idx = np.repeat(np.arange(self.n_objects, dtype=np.int64), lengths)
        seg_max = np.zeros(self.n_objects)
        np.maximum.at(seg_max, segment_idx, self.probs)
        return seg_max

    def dense(
        self,
        max_cells: Optional[int] = None,
        warn_cells: Optional[int] = None,
    ) -> np.ndarray:
        """Materialize the dense ``(n_objects, max_domain)`` matrix.

        Guarded: above ``warn_cells`` (default :data:`DENSE_WARN_CELLS`)
        a :class:`DenseMaterializationWarning` is emitted; above
        ``max_cells`` (default :data:`DENSE_MAX_CELLS`) ``MemoryError``
        is raised with the projected size — the caller should use the
        ragged accessors instead.
        """
        max_cells = DENSE_MAX_CELLS if max_cells is None else int(max_cells)
        warn_cells = DENSE_WARN_CELLS if warn_cells is None else int(warn_cells)
        cells = self.dense_cells()
        if cells > max_cells:
            raise MemoryError(
                f"dense posterior view needs {cells} cells "
                f"(~{self.dense_nbytes() / 1e9:.1f} GB) for "
                f"{self.n_objects} objects x max domain {self.max_domain}; "
                "refusing to materialize — use the ragged PosteriorStore "
                "accessors (offsets/probs/value_codes) instead"
            )
        if cells > warn_cells:
            warnings.warn(
                f"materializing a {self.n_objects} x {self.max_domain} dense "
                f"posterior view (~{self.dense_nbytes() / 1e6:.0f} MB); "
                "prefer the ragged accessors at this scale",
                DenseMaterializationWarning,
                stacklevel=2,
            )
        lengths = self.domain_sizes
        segment_idx = np.repeat(np.arange(self.n_objects, dtype=np.int64), lengths)
        codes_within = (
            np.arange(self.n_rows, dtype=np.int64) - self.offsets[:-1][segment_idx]
        )
        matrix = np.zeros((self.n_objects, self.max_domain))
        matrix[segment_idx, codes_within] = self.probs
        return matrix

    # ------------------------------------------------------------------
    # Mutation used by clamping (construction-time only)
    # ------------------------------------------------------------------
    def zero_spans(self, positions: np.ndarray) -> None:
        """Zero every row of the given objects (clamp preparation)."""
        starts = self.offsets[:-1][positions]
        lengths = self.offsets[1:][positions] - starts
        self.probs[expand_spans(starts, lengths)] = 0.0

    def set_point_mass(self, positions: np.ndarray, codes: np.ndarray) -> None:
        """Clamp objects to exact point masses on within-domain codes."""
        self.zero_spans(positions)
        self.probs[self.offsets[:-1][positions] + codes] = 1.0
        self.value_codes[positions] = codes

    def freeze(self) -> "PosteriorStore":
        """Mark the flat arrays read-only (serving-snapshot discipline).

        Materializes lazy value codes, then flips ``writeable`` off on
        every array (memmaps opened read-only already are).  The
        construction-time mutators (:meth:`zero_spans` /
        :meth:`set_point_mass`) raise afterwards; ``repro.serve``
        publishes every store through this so concurrent readers can
        rely on snapshot immutability.  Returns ``self`` for chaining.
        """
        for array in (self.offsets, self.probs, self.value_codes):
            if array.flags.writeable:
                array.setflags(write=False)
        return self

    # ------------------------------------------------------------------
    # Conversion / persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, matrix: np.ndarray, domain_sizes: np.ndarray) -> "PosteriorStore":
        """Pack a zero-padded dense matrix into ragged form."""
        domain_sizes = np.asarray(domain_sizes, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(domain_sizes)])
        matrix = np.asarray(matrix, dtype=float)
        n_objects = matrix.shape[0]
        segment_idx = np.repeat(np.arange(n_objects, dtype=np.int64), domain_sizes)
        codes_within = (
            np.arange(int(offsets[-1]), dtype=np.int64) - offsets[:-1][segment_idx]
        )
        return cls(offsets, matrix[segment_idx, codes_within])

    def save(self, directory: str) -> str:
        """Write the store as ``.npy`` files under ``directory``.

        Creates ``offsets.npy``, ``probs.npy`` and ``value_codes.npy``
        (codes are materialized if still lazy) and returns the directory,
        ready for a memmapped :meth:`load`.
        """
        os.makedirs(directory, exist_ok=True)
        arrays = (self.offsets, self.probs, self.value_codes)
        for name, array in zip(_STORE_FILES, arrays):
            np.save(os.path.join(directory, f"{name}.npy"), np.ascontiguousarray(array))
        return directory

    @classmethod
    def load(cls, directory: str, mmap: bool = False) -> "PosteriorStore":
        """Read a store saved by :meth:`save`.

        With ``mmap=True`` the flat arrays attach as read-only
        ``numpy.memmap`` views, so posteriors larger than RAM are served
        from disk page cache instead of being loaded wholesale.
        """
        mode = "r" if mmap else None
        offsets, probs, codes = (
            np.load(os.path.join(directory, f"{name}.npy"), mmap_mode=mode)
            for name in _STORE_FILES
        )
        return cls(offsets, probs, codes)
