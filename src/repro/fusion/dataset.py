"""The :class:`FusionDataset` container.

A fusion dataset bundles everything Section 3 of the paper calls
"user-specified input": the source observations ``Ω``, optional ground truth
``G`` (true values for a subset of objects), and optional per-source domain
feature assignments ``F``.

The container pre-computes integer indexings and per-source / per-object
observation groupings so that learners can run vectorized numpy code, and it
offers the train/test splitting protocol used throughout the paper's
evaluation (random ground-truth reveal of a given fraction, remaining objects
used as the test set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._rng import as_generator
from .types import (
    DatasetError,
    DatasetStats,
    Indexer,
    ObjectId,
    Observation,
    SourceId,
    Value,
)


@dataclass(frozen=True)
class Split:
    """A train/test split of the ground truth.

    Attributes
    ----------
    train_truth:
        Mapping from object id to true value, revealed to the learner.
    test_objects:
        Objects whose true value is hidden; metrics are computed on these.
    """

    train_truth: Dict[ObjectId, Value]
    test_objects: Tuple[ObjectId, ...]


class FusionDataset:
    """Immutable collection of source observations plus optional side data.

    Parameters
    ----------
    observations:
        Iterable of :class:`Observation` (or ``(source, obj, value)`` triples).
    ground_truth:
        Optional mapping ``object id -> true value``.  In the paper's
        evaluation all datasets come with full ground truth which is then
        partially revealed for training; the same protocol is supported via
        :meth:`split`.
    source_features:
        Optional mapping ``source id -> {feature name: feature value}``.
        Feature values may be booleans, categoricals or numerics; the
        :mod:`repro.fusion.features` module turns them into binary columns.
    true_accuracies:
        Optional mapping ``source id -> true accuracy`` used only for
        evaluation (available for simulated datasets).
    name:
        Human-readable dataset name used in reports.
    """

    def __init__(
        self,
        observations: Iterable[Observation | Tuple[SourceId, ObjectId, Value]],
        ground_truth: Optional[Mapping[ObjectId, Value]] = None,
        source_features: Optional[Mapping[SourceId, Mapping[str, object]]] = None,
        true_accuracies: Optional[Mapping[SourceId, float]] = None,
        name: str = "fusion-dataset",
    ) -> None:
        obs_list: List[Observation] = []
        for entry in observations:
            if isinstance(entry, Observation):
                obs_list.append(entry)
            else:
                source, obj, value = entry
                obs_list.append(Observation(source, obj, value))
        if not obs_list:
            raise DatasetError("a fusion dataset requires at least one observation")

        self.name = name
        self._observations: Tuple[Observation, ...] = tuple(obs_list)

        self.sources: Indexer[SourceId] = Indexer()
        self.objects: Indexer[ObjectId] = Indexer()
        seen_pairs = set()
        for obs in self._observations:
            pair = (obs.source, obs.obj)
            if pair in seen_pairs:
                raise DatasetError(
                    f"duplicate observation for source={obs.source!r} obj={obs.obj!r}"
                )
            seen_pairs.add(pair)
            self.sources.add(obs.source)
            self.objects.add(obs.obj)

        self.ground_truth: Dict[ObjectId, Value] = dict(ground_truth or {})
        for obj in self.ground_truth:
            if obj not in self.objects:
                raise DatasetError(f"ground truth references unknown object {obj!r}")

        self.source_features: Dict[SourceId, Dict[str, object]] = {
            src: dict(feats) for src, feats in (source_features or {}).items()
        }
        self.true_accuracies: Dict[SourceId, float] = dict(true_accuracies or {})

        self._build_indices()

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build_indices(self) -> None:
        n_obs = len(self._observations)
        self.obs_source_idx = np.empty(n_obs, dtype=np.int64)
        self.obs_object_idx = np.empty(n_obs, dtype=np.int64)

        # Per-object domains (distinct claimed values), in first-seen order.
        self._domains: List[Indexer[Value]] = [Indexer() for _ in range(len(self.objects))]
        self.obs_value_idx = np.empty(n_obs, dtype=np.int64)

        obs_by_object: List[List[int]] = [[] for _ in range(len(self.objects))]
        obs_by_source: List[List[int]] = [[] for _ in range(len(self.sources))]

        for i, obs in enumerate(self._observations):
            s_idx = self.sources.index(obs.source)
            o_idx = self.objects.index(obs.obj)
            self.obs_source_idx[i] = s_idx
            self.obs_object_idx[i] = o_idx
            self.obs_value_idx[i] = self._domains[o_idx].add(obs.value)
            obs_by_object[o_idx].append(i)
            obs_by_source[s_idx].append(i)

        self._obs_by_object = [np.asarray(rows, dtype=np.int64) for rows in obs_by_object]
        self._obs_by_source = [np.asarray(rows, dtype=np.int64) for rows in obs_by_source]

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without the cached dense encoding.

        The compiled :class:`~repro.fusion.encoding.DenseEncoding` is a
        cache, not state: shipping it implicitly with every dataset pickle
        would double the payload of cross-process transfers.  Callers that
        want the compile shipped (the parallel sweep engine) export it
        explicitly via ``DenseEncoding.export_state``.
        """
        state = dict(self.__dict__)
        state.pop("_dense_encoding", None)
        return state

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def observations(self) -> Tuple[Observation, ...]:
        """All observations in input order."""
        return self._observations

    @property
    def n_sources(self) -> int:
        return len(self.sources)

    @property
    def n_objects(self) -> int:
        return len(self.objects)

    @property
    def n_observations(self) -> int:
        return len(self._observations)

    def domain(self, obj: ObjectId) -> List[Value]:
        """Distinct values claimed for ``obj`` (the paper's ``D_o``)."""
        return self._domains[self.objects.index(obj)].items

    def domain_by_index(self, o_idx: int) -> Indexer[Value]:
        """Domain indexer for the object with integer index ``o_idx``."""
        return self._domains[o_idx]

    def observations_of_object(self, obj: ObjectId) -> List[Observation]:
        """All observations that describe ``obj``."""
        o_idx = self.objects.index(obj)
        return [self._observations[i] for i in self._obs_by_object[o_idx]]

    def observations_of_source(self, source: SourceId) -> List[Observation]:
        """All observations made by ``source``."""
        s_idx = self.sources.index(source)
        return [self._observations[i] for i in self._obs_by_source[s_idx]]

    def object_observation_rows(self, o_idx: int) -> np.ndarray:
        """Observation row indices for object index ``o_idx``."""
        return self._obs_by_object[o_idx]

    def source_observation_rows(self, s_idx: int) -> np.ndarray:
        """Observation row indices for source index ``s_idx``."""
        return self._obs_by_source[s_idx]

    def source_observation_counts(self) -> np.ndarray:
        """Number of observations per source, aligned to source indices."""
        return np.asarray([len(rows) for rows in self._obs_by_source], dtype=np.int64)

    # ------------------------------------------------------------------
    # Ground-truth helpers
    # ------------------------------------------------------------------
    def empirical_accuracies(
        self, truth: Optional[Mapping[ObjectId, Value]] = None
    ) -> Dict[SourceId, float]:
        """Fraction of each source's claims that match ``truth``.

        Sources with no observation on a truth-labeled object are omitted.
        When ``truth`` is ``None`` the dataset's full ground truth is used;
        this is how the paper computes the "true" accuracies that the
        source-accuracy error metric compares against.
        """
        truth = self.ground_truth if truth is None else truth
        correct: Dict[SourceId, int] = {}
        total: Dict[SourceId, int] = {}
        for obs in self._observations:
            expected = truth.get(obs.obj)
            if expected is None:
                continue
            total[obs.source] = total.get(obs.source, 0) + 1
            if obs.value == expected:
                correct[obs.source] = correct.get(obs.source, 0) + 1
        return {src: correct.get(src, 0) / count for src, count in total.items()}

    def split(self, train_fraction: float, seed: int = 0) -> Split:
        """Randomly reveal ``train_fraction`` of ground-truth objects.

        This mirrors the paper's evaluation methodology (Section 5.1): splits
        are generated randomly per seed; objects whose truth is not revealed
        form the test set.

        Both sides of the split must be non-empty: a fraction of 0 (or one
        that rounds to zero revealed objects) and a fraction of 1 (or one
        that rounds to every object revealed) raise
        :class:`~repro.fusion.types.DatasetError` (a ``ValueError``) —
        degenerate splits used to crash much later, inside
        ``EMLearner.fit`` warm starts or ``FusionResult.accuracy`` over an
        empty test population.  For the fully unsupervised regime pass an
        empty truth mapping to the learner directly instead of splitting.
        """
        if not 0.0 <= train_fraction <= 1.0:
            raise DatasetError(f"train_fraction must be in [0, 1], got {train_fraction}")
        labeled = sorted(self.ground_truth, key=repr)
        if not labeled:
            raise DatasetError("dataset has no ground truth to split")
        rng = as_generator(seed)
        order = rng.permutation(len(labeled))
        n_train = int(round(train_fraction * len(labeled)))
        if n_train == 0:
            raise DatasetError(
                f"train_fraction {train_fraction} reveals no ground truth "
                f"({len(labeled)} labeled objects); for the unsupervised "
                "regime pass an empty truth mapping instead of splitting"
            )
        if n_train == len(labeled):
            raise DatasetError(
                f"train_fraction {train_fraction} reveals every labeled "
                f"object ({len(labeled)} of {len(labeled)}), leaving no "
                "evaluation side; lower the fraction or evaluate on the "
                "training objects explicitly"
            )
        train_ids = {labeled[i] for i in order[:n_train]}
        train_truth = {obj: self.ground_truth[obj] for obj in train_ids}
        test_objects = tuple(obj for obj in labeled if obj not in train_ids)
        return Split(train_truth=train_truth, test_objects=test_objects)

    # ------------------------------------------------------------------
    # Statistics (paper Table 1)
    # ------------------------------------------------------------------
    def stats(self, min_source_observations_for_acc: int = 2) -> DatasetStats:
        """Summary statistics in the shape of paper Table 1.

        The average source accuracy is reported only when sources have
        enough observations for the empirical estimate to be meaningful
        (the paper omits it for Genomics for exactly this reason).
        """
        feature_names = sorted({name for feats in self.source_features.values() for name in feats})
        feature_values = {
            (name, repr(value))
            for feats in self.source_features.values()
            for name, value in feats.items()
        }
        counts = self.source_observation_counts()
        avg_acc: Optional[float] = None
        if (
            self.ground_truth
            and counts.size
            and float(np.mean(counts)) >= min_source_observations_for_acc
        ):
            accs = self.empirical_accuracies()
            if accs:
                avg_acc = float(np.mean(list(accs.values())))
        return DatasetStats(
            n_sources=self.n_sources,
            n_objects=self.n_objects,
            n_observations=self.n_observations,
            n_domain_features=len(feature_names),
            n_feature_values=len(feature_values),
            avg_source_accuracy=avg_acc,
            avg_observations_per_object=self.n_observations / self.n_objects,
            avg_observations_per_source=self.n_observations / self.n_sources,
            ground_truth_fraction=len(self.ground_truth) / self.n_objects,
        )

    # ------------------------------------------------------------------
    # Append API
    # ------------------------------------------------------------------
    def extended(
        self,
        observations: Iterable[Observation | Tuple[SourceId, ObjectId, Value]],
        ground_truth: Optional[Mapping[ObjectId, Value]] = None,
        source_features: Optional[Mapping[SourceId, Mapping[str, object]]] = None,
        true_accuracies: Optional[Mapping[SourceId, float]] = None,
        name: Optional[str] = None,
    ) -> "FusionDataset":
        """Return a new dataset with ``observations`` appended.

        The container stays immutable: appending builds a fresh
        :class:`FusionDataset` whose observation order is this dataset's
        followed by the new batch, so source/object indices and per-object
        value codes of existing data are preserved.  Ground truth, source
        features and true accuracies are merged (new entries win).  For
        repeated appends on a hot path use
        :class:`~repro.fusion.encoding.IncrementalEncoding`, which updates
        the compiled index arrays in O(batch) instead of re-walking the
        accumulated observations.
        """
        combined = list(self._observations)
        for entry in observations:
            combined.append(entry if isinstance(entry, Observation) else Observation(*entry))
        merged_truth = dict(self.ground_truth)
        merged_truth.update(ground_truth or {})
        merged_features: Dict[SourceId, Dict[str, object]] = {
            src: dict(feats) for src, feats in self.source_features.items()
        }
        for src, feats in (source_features or {}).items():
            merged_features.setdefault(src, {}).update(feats)
        merged_accuracies = dict(self.true_accuracies)
        merged_accuracies.update(true_accuracies or {})
        return FusionDataset(
            combined,
            ground_truth=merged_truth,
            source_features=merged_features,
            true_accuracies=merged_accuracies,
            name=name if name is not None else self.name,
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FusionDataset(name={self.name!r}, sources={self.n_sources}, "
            f"objects={self.n_objects}, observations={self.n_observations})"
        )


def subset_sources(dataset: FusionDataset, keep: Sequence[SourceId]) -> FusionDataset:
    """Restrict ``dataset`` to observations from ``keep`` sources.

    Used by the source-quality-initialization experiment (paper Section
    5.3.2), which trains on a fraction of sources and predicts accuracies of
    the held-out ones.  Objects that lose all observations are dropped from
    the restricted dataset (and from its ground truth).
    """
    keep_set = set(keep)
    observations = [obs for obs in dataset.observations if obs.source in keep_set]
    if not observations:
        raise DatasetError("source subset leaves no observations")
    remaining_objects = {obs.obj for obs in observations}
    ground_truth = {
        obj: value for obj, value in dataset.ground_truth.items() if obj in remaining_objects
    }
    source_features = {
        src: feats for src, feats in dataset.source_features.items() if src in keep_set
    }
    true_accuracies = {src: acc for src, acc in dataset.true_accuracies.items() if src in keep_set}
    return FusionDataset(
        observations,
        ground_truth=ground_truth,
        source_features=source_features,
        true_accuracies=true_accuracies,
        name=f"{dataset.name}[{len(keep_set)} sources]",
    )
