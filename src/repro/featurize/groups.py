"""Reliability feature groups: named, versioned column blocks.

Each group turns a :class:`~repro.featurize.stats.SourceStats` into a
small ``|S| x k`` block of float columns.  Groups are frozen dataclasses
(hashable, picklable) carrying a ``name`` and an integer ``version``;
the pair forms the group's :attr:`key`, which the pipeline folds into
its cache key so editing a group's semantics (and bumping its version)
invalidates cached matrices automatically.

All columns are finite for every source (0-claim sources get zeros) and
roughly unit-scaled; the pipeline can additionally z-score the block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .stats import SourceStats


def _safe_div(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """Elementwise ``num / den`` with 0 where ``den == 0``."""
    den = np.asarray(den, dtype=float)
    out = np.zeros(np.broadcast(num, den).shape, dtype=float)
    np.divide(num, den, out=out, where=den != 0)
    return out


@dataclass(frozen=True)
class FeatureGroup:
    """Base class: a named, versioned block of per-source columns."""

    name = "base"
    version = 1

    @property
    def key(self) -> str:
        """Stable identity folded into the pipeline cache key."""
        return f"{self.name}@v{self.version}"

    def column_names(self) -> List[str]:
        raise NotImplementedError

    def compute(self, stats: SourceStats) -> np.ndarray:
        """Return a ``(stats.n_sources, len(column_names()))`` block."""
        raise NotImplementedError


@dataclass(frozen=True)
class VolumeGroup(FeatureGroup):
    """How much the source claims, absolutely and relative to the dataset."""

    name = "volume"
    version = 1

    def column_names(self) -> List[str]:
        return ["volume:claim_share", "volume:log_claims"]

    def compute(self, stats: SourceStats) -> np.ndarray:
        claims = stats.n_claims.astype(float)
        share = claims / max(stats.n_observations, 1)
        log_claims = np.log1p(claims) / np.log1p(max(stats.n_observations, 1))
        return np.column_stack([share, log_claims])


@dataclass(frozen=True)
class BreadthGroup(FeatureGroup):
    """Coverage of the object space and typical claimed-domain size."""

    name = "breadth"
    version = 1

    def column_names(self) -> List[str]:
        return ["breadth:object_coverage", "breadth:mean_domain"]

    def compute(self, stats: SourceStats) -> np.ndarray:
        claims = stats.n_claims.astype(float)
        coverage = claims / max(stats.n_objects, 1)
        mean_domain = _safe_div(stats.sum_domain, claims)
        return np.column_stack([coverage, mean_domain])


@dataclass(frozen=True)
class RecencyGroup(FeatureGroup):
    """Where in the arrival stream the source's claims sit.

    Arrival rows are the stream clock; staleness and mean age are
    normalized by the stream length, and ``decayed_share`` is the
    half-life-decayed volume relative to the raw claim count (1.0 when
    every claim is brand new, approaching 0 for long-dormant sources).
    """

    name = "recency"
    version = 1

    def column_names(self) -> List[str]:
        return ["recency:staleness", "recency:mean_age", "recency:decayed_share"]

    def compute(self, stats: SourceStats) -> np.ndarray:
        horizon = float(max(stats.n_observations, 1))
        claims = stats.n_claims.astype(float)
        last = stats.last_row.astype(float)
        has_claims = stats.n_claims > 0
        staleness = np.where(has_claims, (horizon - 1.0 - last) / horizon, 0.0)
        mean_row = _safe_div(stats.sum_row, claims)
        mean_age = np.where(has_claims, (horizon - 1.0 - mean_row) / horizon, 0.0)
        decayed_share = _safe_div(stats.decayed_volume, claims)
        return np.column_stack([staleness, mean_age, decayed_share])


@dataclass(frozen=True)
class CorroborationGroup(FeatureGroup):
    """Agreement with the per-object consensus and with co-claimants."""

    name = "corroboration"
    version = 1

    def column_names(self) -> List[str]:
        return ["corroboration:consensus_rate", "corroboration:agreement_rate"]

    def compute(self, stats: SourceStats) -> np.ndarray:
        consensus_rate = _safe_div(stats.n_consensus.astype(float), stats.n_claims.astype(float))
        agreement_rate = _safe_div(stats.sum_agree, stats.sum_coclaim)
        return np.column_stack([consensus_rate, agreement_rate])


@dataclass(frozen=True)
class RecentCorroborationGroup(FeatureGroup):
    """Recency-weighted agreement: corroboration of the source's *latest* claims.

    ``sum_agree`` averages over a source's whole history, which goes
    stale under reliability drift; here each claim's agreeing-co-claimant
    count is weighted by ``2^((row - last_row)/half_life)``, so the rate
    tracks how corroborated the source's recent behavior is.
    """

    name = "recent_corroboration"
    version = 1

    def column_names(self) -> List[str]:
        return ["recent_corroboration:decayed_agreement"]

    def compute(self, stats: SourceStats) -> np.ndarray:
        # Recency-weighted mean agreeing co-claimants per claim.
        rate = _safe_div(stats.decayed_agree, stats.decayed_volume)
        return rate[:, np.newaxis]


@dataclass(frozen=True)
class ContradictionGroup(FeatureGroup):
    """Fraction of claims disputed by at least one other source."""

    name = "contradiction"
    version = 1

    def column_names(self) -> List[str]:
        return ["contradiction:contradicted_rate"]

    def compute(self, stats: SourceStats) -> np.ndarray:
        rate = _safe_div(stats.n_contradicted.astype(float), stats.n_claims.astype(float))
        return rate[:, np.newaxis]


@dataclass(frozen=True)
class OverlapGroup(FeatureGroup):
    """How much the source's claimed objects overlap other sources'."""

    name = "overlap"
    version = 1

    def column_names(self) -> List[str]:
        return ["overlap:shared_rate", "overlap:mean_coclaimants"]

    def compute(self, stats: SourceStats) -> np.ndarray:
        claims = stats.n_claims.astype(float)
        shared_rate = 1.0 - _safe_div(stats.n_solo.astype(float), claims)
        shared_rate[stats.n_claims == 0] = 0.0
        mean_coclaimants = _safe_div(stats.sum_coclaim, claims)
        return np.column_stack([shared_rate, mean_coclaimants])


@dataclass(frozen=True)
class EntropyGroup(FeatureGroup):
    """Mean contestedness (normalized vote entropy) of claimed objects."""

    name = "entropy"
    version = 1

    def column_names(self) -> List[str]:
        return ["entropy:mean_claim_entropy"]

    def compute(self, stats: SourceStats) -> np.ndarray:
        mean_entropy = _safe_div(stats.sum_entropy, stats.n_claims.astype(float))
        return mean_entropy[:, np.newaxis]


def default_groups() -> Tuple[FeatureGroup, ...]:
    """The full reliability library, in canonical column order."""
    return (
        VolumeGroup(),
        BreadthGroup(),
        RecencyGroup(),
        CorroborationGroup(),
        RecentCorroborationGroup(),
        ContradictionGroup(),
        OverlapGroup(),
        EntropyGroup(),
    )


__all__ = [
    "FeatureGroup",
    "VolumeGroup",
    "BreadthGroup",
    "RecencyGroup",
    "CorroborationGroup",
    "RecentCorroborationGroup",
    "ContradictionGroup",
    "OverlapGroup",
    "EntropyGroup",
    "default_groups",
]
