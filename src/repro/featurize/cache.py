"""Content + version addressed cache for featurized design matrices.

A cached entry is keyed by ``sha256(dataset_digest || version_key)``:

* ``dataset_digest`` hashes the encoding's flat claim arrays plus the
  source metadata, so *any* change to the data produces a new key;
* ``version_key`` is the pipeline's configuration fingerprint
  (:attr:`FeaturizerPipeline.version_key` — pipeline version, group
  ``name@version`` keys, half-life, standardization, metadata options),
  so bumping ``FEATURIZER_VERSION`` or any group version invalidates
  every cached matrix without touching the data.

Entries are single ``.npz`` files (matrix + column names + a small JSON
metadata record) written atomically via a temp file + ``os.replace``;
an in-process memo layer makes repeat featurizations of the same
dataset free even without a cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Arrays hashed into the dataset digest (claim structure + arrival order).
DIGEST_ARRAYS = (
    "obs_source_idx",
    "obs_object_idx",
    "obs_value_code",
    "obs_order",
    "domain_sizes",
)


def dataset_digest(
    arrays: Mapping[str, np.ndarray],
    source_features: Optional[Mapping[object, Mapping[str, object]]] = None,
) -> str:
    """Hex digest of the dataset content a featurization depends on."""
    h = hashlib.sha256()
    for name in DIGEST_ARRAYS:
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    if source_features:
        meta_repr = sorted(
            (repr(src), sorted((key, repr(val)) for key, val in feats.items()))
            for src, feats in source_features.items()
        )
        h.update(repr(meta_repr).encode())
    return h.hexdigest()


def cache_key(digest: str, version_key: str) -> str:
    """Combine a dataset digest and a pipeline version key into one key."""
    h = hashlib.sha256()
    h.update(digest.encode())
    h.update(b"\x00")
    h.update(version_key.encode())
    return h.hexdigest()[:32]


class FeatureCache:
    """Disk-backed (plus in-process) store for featurized matrices."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else None
        self._memory: Dict[str, Tuple[np.ndarray, List[str], Dict[str, object]]] = {}

    def __getstate__(self) -> Dict[str, object]:
        # The memo holds raw matrices; never ship it across processes.
        return {"root": self.root}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.root = state["root"]
        self._memory = {}

    def path_for(self, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / f"featurized_{key}.npz"

    def load(self, key: str) -> Optional[Tuple[np.ndarray, List[str], Dict[str, object]]]:
        """Return ``(matrix, column_names, meta)`` or ``None`` on miss."""
        hit = self._memory.get(key)
        if hit is not None:
            matrix, names, meta = hit
            return matrix.copy(), list(names), dict(meta)
        path = self.path_for(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as payload:
                matrix = np.asarray(payload["matrix"], dtype=float)
                names = [str(name) for name in payload["column_names"]]
                meta = json.loads(str(payload["meta"]))
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            return None  # corrupt/partial entries behave as misses
        self._memory[key] = (matrix, names, meta)
        return matrix.copy(), list(names), dict(meta)

    def store(
        self,
        key: str,
        matrix: np.ndarray,
        column_names: Sequence[str],
        meta: Mapping[str, object],
    ) -> Optional[Path]:
        """Persist an entry; returns the written path (None if memory-only)."""
        names = [str(name) for name in column_names]
        record = dict(meta)
        self._memory[key] = (np.asarray(matrix, dtype=float).copy(), names, record)
        path = self.path_for(key)
        if path is None:
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle,
                    matrix=np.asarray(matrix, dtype=float),
                    column_names=np.array(names, dtype=np.str_),
                    meta=np.str_(json.dumps(record, sort_keys=True)),
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear_memory(self) -> None:
        """Drop the in-process memo (disk entries survive)."""
        self._memory.clear()


__all__ = ["FeatureCache", "dataset_digest", "cache_key", "DIGEST_ARRAYS"]
