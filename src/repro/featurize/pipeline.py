"""The reliability featurizer pipeline.

:class:`FeaturizerPipeline` composes versioned reliability
:mod:`feature groups <repro.featurize.groups>` (computed from the data
itself via chunked, order-independent per-source reductions) with the
classic metadata :class:`~repro.fusion.features.FeatureSpace` block, and
persists results in a content + version addressed
:class:`~repro.featurize.cache.FeatureCache`.

The produced design matrix plugs into the learners through
:class:`FeaturizedSpace`, a read-only stand-in for a fitted
``FeatureSpace`` (column labels for introspection; ``transform_one``
raises, because reliability features are derived from claim data a new
source does not have yet).

Typical use::

    from repro.featurize import FeaturizerPipeline

    pipeline = FeaturizerPipeline(cache_dir=".feature_cache")
    design, space = pipeline.design_for(dataset)           # |S| x K
    learner = EMLearner(EMConfig(featurizer=pipeline))     # or wire directly
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..fusion.features import FEATURE_SPACE_VERSION, FeatureSpace
from ..fusion.types import DatasetError, NotFittedError, SourceId
from .cache import FeatureCache, cache_key, dataset_digest
from .groups import FeatureGroup, default_groups
from .stats import (
    DEFAULT_HALF_LIFE,
    STAT_ARRAYS,
    SourceStats,
    compute_source_stats,
)

#: Bump to invalidate every cached matrix after a pipeline-semantics change.
FEATURIZER_VERSION = 1

_UNSET = object()


class FeaturizedSpace:
    """Read-only ``FeatureSpace`` stand-in for pipeline-produced designs.

    Provides the introspection surface the model layer needs
    (:attr:`column_labels`, :attr:`n_columns`, :meth:`columns_for`) while
    making the data-derived nature of the columns explicit:
    :meth:`transform_one` raises :class:`NotFittedError`, since a brand
    new source has no claim history to featurize.
    """

    def __init__(self, column_labels: Sequence[str], version_key: str = "") -> None:
        self._column_labels = [str(label) for label in column_labels]
        self.version_key = version_key

    @property
    def column_labels(self) -> List[str]:
        return list(self._column_labels)

    @property
    def n_columns(self) -> int:
        return len(self._column_labels)

    def columns_for(self, name: str) -> List[Tuple[int, str]]:
        """(index, label) of columns belonging to one group or feature."""
        prefix_a = f"{name}:"
        prefix_b = f"{name}="
        return [
            (i, label)
            for i, label in enumerate(self._column_labels)
            if label.startswith(prefix_a) or label.startswith(prefix_b)
        ]

    def transform_one(self, features: Mapping[str, object], unseen: Optional[str] = None):
        raise NotFittedError(
            "reliability features are derived from claim data; a new source "
            "has no claim history to featurize. Refit (or refeaturize) with "
            "the source's claims included instead."
        )

    encode = transform_one

    def to_state(self) -> Dict[str, object]:
        return {"column_labels": list(self._column_labels), "version_key": self.version_key}

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "FeaturizedSpace":
        return cls(list(state["column_labels"]), str(state.get("version_key", "")))


@dataclass
class FeaturizedDesign:
    """Result of one featurization: the matrix plus its provenance."""

    matrix: np.ndarray
    column_names: List[str]
    version_key: str
    digest: str
    from_cache: bool = False
    stats: Optional[SourceStats] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def n_sources(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def n_columns(self) -> int:
        return int(self.matrix.shape[1])

    def space(self) -> FeaturizedSpace:
        return FeaturizedSpace(self.column_names, self.version_key)


@dataclass
class _EncodedView:
    """Normalized view over FusionDataset / DenseEncoding / IncrementalEncoding."""

    arrays: Dict[str, np.ndarray]
    n_sources: int
    n_objects: int
    source_ids: List[SourceId]
    source_features: Mapping[SourceId, Mapping[str, object]]


def _resolve_source(source) -> _EncodedView:
    if hasattr(source, "obs_pair_idx") or hasattr(source, "append"):
        encoding = source  # DenseEncoding or IncrementalEncoding
    elif hasattr(source, "observations") or hasattr(source, "domain_by_index"):
        from ..fusion.encoding import encode_dataset

        encoding = encode_dataset(source)
    else:
        raise DatasetError(
            "featurizer input must be a FusionDataset, DenseEncoding or "
            f"IncrementalEncoding, got {type(source).__name__}"
        )
    dataset = getattr(encoding, "dataset", encoding)
    arrays = {name: np.asarray(getattr(encoding, name)) for name in STAT_ARRAYS}
    return _EncodedView(
        arrays=arrays,
        n_sources=int(encoding.n_sources),
        n_objects=int(encoding.n_objects),
        source_ids=list(dataset.sources.items),
        source_features=dict(getattr(dataset, "source_features", {}) or {}),
    )


class FeaturizerPipeline:
    """Compose reliability groups + metadata features into one design.

    Parameters
    ----------
    groups:
        The reliability :class:`FeatureGroup` instances, in column order.
        Defaults to the full library (:func:`default_groups`).
    include_metadata:
        Append the classic metadata one-hot block (a
        :class:`FeatureSpace` fitted on ``source_features``) after the
        reliability columns.
    metadata_bins:
        ``n_bins`` for the metadata space's numeric features.
    standardize:
        Z-score the reliability block column-wise (constant columns
        become zeros).  The metadata block stays binary.
    half_life:
        Half-life, in arrival rows, of the decayed-volume accumulator.
    n_jobs:
        Default process fan-out for the statistics pass (``1`` inline,
        ``None`` = CPU count).  Results are bit-identical across any
        value.
    cache:
        A :class:`FeatureCache`, a directory path for one, or ``None``
        (in-process memoization only).
    """

    def __init__(
        self,
        groups: Optional[Sequence[FeatureGroup]] = None,
        *,
        include_metadata: bool = True,
        metadata_bins: int = 2,
        standardize: bool = True,
        half_life: float = DEFAULT_HALF_LIFE,
        n_jobs: Optional[int] = 1,
        cache: Union[FeatureCache, str, None] = None,
        cache_dir: Union[str, None] = None,
    ) -> None:
        self.groups: Tuple[FeatureGroup, ...] = tuple(
            default_groups() if groups is None else groups
        )
        seen = set()
        for group in self.groups:
            if group.key in seen:
                raise DatasetError(f"duplicate feature group {group.key!r}")
            seen.add(group.key)
        self.include_metadata = bool(include_metadata)
        self.metadata_bins = int(metadata_bins)
        self.standardize = bool(standardize)
        self.half_life = float(half_life)
        if self.half_life <= 0:
            raise DatasetError(f"half_life must be positive, got {half_life!r}")
        self.n_jobs = n_jobs
        if cache is None and cache_dir is not None:
            cache = cache_dir
        self.cache: FeatureCache = (
            cache if isinstance(cache, FeatureCache) else FeatureCache(cache)
        )

    # ------------------------------------------------------------------
    @property
    def version_key(self) -> str:
        """Configuration fingerprint folded into every cache key."""
        parts = [
            f"fz{FEATURIZER_VERSION}",
            f"hl={self.half_life:g}",
            f"std={int(self.standardize)}",
            f"groups={','.join(group.key for group in self.groups)}",
        ]
        if self.include_metadata:
            parts.append(f"meta=fs{FEATURE_SPACE_VERSION}:bins={self.metadata_bins}")
        else:
            parts.append("meta=off")
        return "|".join(parts)

    def __repr__(self) -> str:
        return f"FeaturizerPipeline({self.version_key})"

    # ------------------------------------------------------------------
    def featurize(self, source, *, n_jobs=_UNSET) -> FeaturizedDesign:
        """Compute (or load) the featurized design for a dataset/encoding."""
        view = _resolve_source(source)
        digest = dataset_digest(view.arrays, view.source_features)
        key = cache_key(digest, self.version_key)
        hit = self.cache.load(key)
        if hit is not None:
            matrix, names, meta = hit
            return FeaturizedDesign(
                matrix=matrix,
                column_names=names,
                version_key=self.version_key,
                digest=digest,
                from_cache=True,
                meta=meta,
            )

        jobs = self.n_jobs if n_jobs is _UNSET else n_jobs
        stats = compute_source_stats(
            view.arrays, view.n_sources, half_life=self.half_life, n_jobs=jobs
        )
        matrix, names = self._assemble(stats, view.source_ids, view.source_features)
        meta = {
            "digest": digest,
            "version_key": self.version_key,
            "n_sources": int(matrix.shape[0]),
            "n_columns": int(matrix.shape[1]),
        }
        self.cache.store(key, matrix, names, meta)
        return FeaturizedDesign(
            matrix=matrix,
            column_names=names,
            version_key=self.version_key,
            digest=digest,
            from_cache=False,
            stats=stats,
            meta=meta,
        )

    def design_for(self, source, *, n_jobs=_UNSET):
        """``(design, FeaturizedSpace)`` — the learner-facing entry point."""
        result = self.featurize(source, n_jobs=n_jobs)
        return result.matrix, result.space()

    def design_from_stats(
        self,
        stats: SourceStats,
        source_ids: Sequence[SourceId] = (),
        source_features: Optional[Mapping[SourceId, Mapping[str, object]]] = None,
    ):
        """Assemble a design from precomputed stats (streaming refits).

        Bypasses digesting and the cache: the caller (e.g. a
        :class:`~repro.featurize.stats.RunningSourceStats` owner) already
        holds the up-to-date accumulators.
        """
        matrix, names = self._assemble(stats, list(source_ids), source_features or {})
        return matrix, FeaturizedSpace(names, self.version_key)

    # ------------------------------------------------------------------
    def _assemble(
        self,
        stats: SourceStats,
        source_ids: List[SourceId],
        source_features: Mapping[SourceId, Mapping[str, object]],
    ) -> Tuple[np.ndarray, List[str]]:
        n_sources = stats.n_sources
        blocks: List[np.ndarray] = []
        names: List[str] = []
        for group in self.groups:
            block = np.asarray(group.compute(stats), dtype=float)
            group_names = group.column_names()
            if block.shape != (n_sources, len(group_names)):
                raise DatasetError(
                    f"feature group {group.key!r} produced shape {block.shape}, "
                    f"expected {(n_sources, len(group_names))}"
                )
            blocks.append(block)
            names.extend(group_names)
        reliability = (
            np.concatenate(blocks, axis=1) if blocks else np.zeros((n_sources, 0))
        )
        if self.standardize and reliability.shape[1]:
            mean = reliability.mean(axis=0)
            std = reliability.std(axis=0)
            scaled = np.zeros_like(reliability)
            np.divide(reliability - mean, std, out=scaled, where=std > 0)
            reliability = scaled

        if self.include_metadata and source_features:
            space = FeatureSpace(n_bins=self.metadata_bins).fit(source_features)
            meta_block = np.zeros((n_sources, space.n_columns))
            for s_idx, source in enumerate(source_ids[:n_sources]):
                feats = source_features.get(source)
                if feats:
                    meta_block[s_idx] = space.transform_one(feats)
            reliability = np.concatenate([reliability, meta_block], axis=1)
            names.extend(space.column_labels)
        return reliability, names


__all__ = [
    "FEATURIZER_VERSION",
    "FeaturizerPipeline",
    "FeaturizedDesign",
    "FeaturizedSpace",
]
