"""Per-source reliability statistics computed from the data itself.

The reliability featurizer (Section 3.2's domain-feature idea, applied to
*data-derived* signals) reduces a fused dataset to a small set of
per-source accumulators:

* volume — how many claims the source makes;
* breadth — how large the claimed objects' domains are;
* recency — where in the arrival stream the claims sit (row indices are
  the arrival clock), including an exponentially decayed volume;
* corroboration — how often the source agrees with the per-object
  consensus and with co-claiming sources;
* contradiction — how often at least one other source disputes a claim;
* overlap — how often claims are solo vs shared with other sources;
* entropy — how contested the claimed objects are (normalized vote
  entropy).

Everything is a segmented reduction over the encoding's flat arrays:
object-level quantities (:class:`ObjectStats`) are computed once
globally, then per-source sums are masked ``np.bincount`` calls over a
contiguous source range.  Because chunking by source range preserves
each source's observation order and ``bincount`` accumulates
sequentially per bin, concatenating per-chunk results is **bit-identical**
to a single full-range pass — the invariant the chunked-parallel
pipeline and its tests rely on.

:class:`RunningSourceStats` maintains the same accumulators under
O(batch + touched-object claims) streaming appends, for the
:class:`~repro.extensions.streaming.StreamingFuser` refit path.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..fusion.posterior_store import segmented_argmax

#: Default half-life (in arrival rows) of the decayed-volume accumulator.
DEFAULT_HALF_LIFE = 256.0

_ROW_SENTINEL = np.iinfo(np.int64).max

#: The flat encoding arrays the statistics pass reads.
STAT_ARRAYS = (
    "obs_source_idx",
    "obs_object_idx",
    "obs_value_code",
    "obs_pair_idx",
    "obs_order",
    "pair_offsets",
    "domain_sizes",
)


@dataclass(frozen=True)
class ObjectStats:
    """Global per-object/per-pair quantities shared by every source chunk.

    Attributes
    ----------
    votes:
        Per candidate pair: how many sources claim that value.
    claims_per_object:
        Per object: total number of claims (= number of claiming sources).
    consensus_code:
        Per object: the plurality value code (ties break toward the
        lowest code, matching :func:`segmented_argmax`).
    entropy:
        Per object: vote entropy normalized by ``log(max(|D_o|, 2))`` so
        values live in ``[0, 1]``.
    domain_sizes:
        Per object: number of distinct claimed values.
    """

    votes: np.ndarray
    claims_per_object: np.ndarray
    consensus_code: np.ndarray
    entropy: np.ndarray
    domain_sizes: np.ndarray

    def as_arrays(self) -> Dict[str, np.ndarray]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class SourceStats:
    """Per-source accumulators over a contiguous source range.

    All arrays are aligned to sources ``range(source_start, source_stop)``.
    ``concat`` glues adjacent chunks back together; the result of
    concatenating any chunking equals the single-pass computation
    bit-for-bit (see module docstring).
    """

    source_start: int
    source_stop: int
    n_observations: int
    n_objects: int
    half_life: float

    n_claims: np.ndarray  # int64: total claims
    n_solo: np.ndarray  # int64: claims on single-claim objects
    n_consensus: np.ndarray  # int64: claims matching the object consensus
    n_contradicted: np.ndarray  # int64: claims disputed by >=1 other source
    sum_domain: np.ndarray  # float: sum of claimed objects' |D_o|
    sum_coclaim: np.ndarray  # float: sum of co-claimant counts
    sum_agree: np.ndarray  # float: sum of agreeing co-claimant counts
    sum_entropy: np.ndarray  # float: sum of claimed objects' entropies
    sum_row: np.ndarray  # float: sum of arrival rows
    first_row: np.ndarray  # int64: earliest arrival row (sentinel if none)
    last_row: np.ndarray  # int64: latest arrival row (-1 if none)
    decayed_volume: np.ndarray  # float: sum of 2^((row - last_row)/h)
    decayed_agree: np.ndarray  # float: recency-weighted sum of agreeing co-claimants

    ARRAY_FIELDS = (
        "n_claims",
        "n_solo",
        "n_consensus",
        "n_contradicted",
        "sum_domain",
        "sum_coclaim",
        "sum_agree",
        "sum_entropy",
        "sum_row",
        "first_row",
        "last_row",
        "decayed_volume",
        "decayed_agree",
    )

    @property
    def n_sources(self) -> int:
        return self.source_stop - self.source_start

    @classmethod
    def concat(cls, parts: Sequence["SourceStats"]) -> "SourceStats":
        """Glue adjacent source-range chunks (ascending, contiguous)."""
        if not parts:
            raise ValueError("cannot concatenate zero SourceStats chunks")
        parts = sorted(parts, key=lambda p: p.source_start)
        for left, right in zip(parts, parts[1:]):
            if left.source_stop != right.source_start:
                raise ValueError(
                    f"source ranges must be contiguous: "
                    f"[{left.source_start}, {left.source_stop}) then "
                    f"[{right.source_start}, {right.source_stop})"
                )
        head = parts[0]
        merged = {
            name: np.concatenate([getattr(p, name) for p in parts]) for name in cls.ARRAY_FIELDS
        }
        return cls(
            source_start=head.source_start,
            source_stop=parts[-1].source_stop,
            n_observations=head.n_observations,
            n_objects=head.n_objects,
            half_life=head.half_life,
            **merged,
        )


def compute_object_stats(arrays: Mapping[str, np.ndarray]) -> ObjectStats:
    """One global pass producing the shared object-level quantities."""
    pair_offsets = arrays["pair_offsets"]
    domain_sizes = arrays["domain_sizes"]
    obs_pair_idx = arrays["obs_pair_idx"]
    obs_object_idx = arrays["obs_object_idx"]
    n_objects = domain_sizes.shape[0]
    n_pairs = int(pair_offsets[-1]) if pair_offsets.shape[0] else 0

    votes = np.bincount(obs_pair_idx, minlength=n_pairs).astype(np.int64)
    claims_per_object = np.bincount(obs_object_idx, minlength=n_objects).astype(np.int64)
    consensus_code = segmented_argmax(votes.astype(float), pair_offsets)

    # Normalized vote entropy per object.  Zero-vote pairs contribute an
    # exact 0.0, so the bincount accumulation order matches the
    # ascending-code order RunningSourceStats uses.
    lengths = pair_offsets[1:] - pair_offsets[:-1]
    pair_object = np.repeat(np.arange(n_objects, dtype=np.int64), lengths)
    totals = np.maximum(claims_per_object[pair_object], 1)
    p = votes / totals
    terms = np.where(votes > 0, -p * np.log(np.where(votes > 0, p, 1.0)), 0.0)
    entropy = np.bincount(pair_object, weights=terms, minlength=n_objects)
    entropy = entropy / np.log(np.maximum(domain_sizes, 2))

    return ObjectStats(
        votes=votes,
        claims_per_object=claims_per_object,
        consensus_code=consensus_code,
        entropy=entropy,
        domain_sizes=np.asarray(domain_sizes, dtype=np.int64),
    )


def compute_source_stats_chunk(
    arrays: Mapping[str, np.ndarray],
    object_stats: ObjectStats,
    source_start: int,
    source_stop: int,
    *,
    half_life: float = DEFAULT_HALF_LIFE,
) -> SourceStats:
    """Per-source accumulators for sources ``[source_start, source_stop)``.

    The mask keeps each source's observations in the encoding's
    object-sorted order, so every ``bincount`` below accumulates a given
    source's terms in the same order regardless of how the source axis
    is chunked — the bit-identity invariant.
    """
    n = source_stop - source_start
    obs_source_idx = arrays["obs_source_idx"]
    mask = (obs_source_idx >= source_start) & (obs_source_idx < source_stop)
    src = obs_source_idx[mask] - source_start
    obj = arrays["obs_object_idx"][mask]
    code = arrays["obs_value_code"][mask]
    pair = arrays["obs_pair_idx"][mask]
    rows = arrays["obs_order"][mask]
    rows_f = rows.astype(float)

    claims_on_obj = object_stats.claims_per_object[obj]
    votes = object_stats.votes[pair]

    def count(cond: np.ndarray) -> np.ndarray:
        return np.bincount(src[cond], minlength=n).astype(np.int64)

    def total(weights: np.ndarray) -> np.ndarray:
        return np.bincount(src, weights=weights, minlength=n)

    n_claims = np.bincount(src, minlength=n).astype(np.int64)
    n_solo = count(claims_on_obj == 1)
    n_consensus = count(object_stats.consensus_code[obj] == code)
    n_contradicted = count(votes < claims_on_obj)
    sum_domain = total(object_stats.domain_sizes[obj].astype(float))
    sum_coclaim = total((claims_on_obj - 1).astype(float))
    sum_agree = total((votes - 1).astype(float))
    sum_entropy = total(object_stats.entropy[obj])
    sum_row = total(rows_f)

    first_row = np.full(n, _ROW_SENTINEL, dtype=np.int64)
    np.minimum.at(first_row, src, rows)
    last_row = np.full(n, -1, dtype=np.int64)
    np.maximum.at(last_row, src, rows)

    # Exponents are <= 0 by construction, so the decayed accumulators
    # never overflow no matter how long the stream ran.  decayed_agree is
    # the drift-aware cousin of sum_agree: corroboration weighted toward
    # each source's recent claims.
    age = (rows_f - last_row[src].astype(float)) / float(half_life)
    weights = np.exp2(age)
    decayed_volume = total(weights)
    decayed_agree = total(weights * (votes - 1).astype(float))

    return SourceStats(
        source_start=source_start,
        source_stop=source_stop,
        n_observations=int(obs_source_idx.shape[0]),
        n_objects=int(object_stats.domain_sizes.shape[0]),
        half_life=float(half_life),
        n_claims=n_claims,
        n_solo=n_solo,
        n_consensus=n_consensus,
        n_contradicted=n_contradicted,
        sum_domain=sum_domain,
        sum_coclaim=sum_coclaim,
        sum_agree=sum_agree,
        sum_entropy=sum_entropy,
        sum_row=sum_row,
        first_row=first_row,
        last_row=last_row,
        decayed_volume=decayed_volume,
        decayed_agree=decayed_agree,
    )


def compute_source_stats(
    arrays: Mapping[str, np.ndarray],
    n_sources: int,
    *,
    half_life: float = DEFAULT_HALF_LIFE,
    n_jobs: Optional[int] = 1,
) -> SourceStats:
    """Full per-source statistics, optionally fanned over processes.

    ``n_jobs=1`` computes everything inline; ``n_jobs=None`` resolves to
    the CPU count via :func:`repro.experiments.parallel.resolve_n_jobs`.
    Results are bit-identical across any ``n_jobs`` (see module
    docstring); the parallel path ships the flat arrays to workers once
    (through shared memory when worthwhile) and reduces chunks in
    ascending source order.
    """
    object_stats = compute_object_stats(arrays)
    if n_sources == 0:
        return compute_source_stats_chunk(arrays, object_stats, 0, 0, half_life=half_life)

    # Lazy import: repro.featurize must not import repro.experiments at
    # module scope (experiments -> harness -> core -> featurize cycle).
    from ..experiments.parallel import chunk_indices, resolve_n_jobs

    jobs = resolve_n_jobs(n_jobs)
    chunks = [c for c in chunk_indices(n_sources, max(jobs, 1)) if len(c)]
    if jobs <= 1 or len(chunks) <= 1:
        parts = [
            compute_source_stats_chunk(arrays, object_stats, c.start, c.stop, half_life=half_life)
            for c in chunks
        ]
    else:
        parts = _parallel_chunks(arrays, object_stats, chunks, half_life, jobs)
    return SourceStats.concat(parts)


# ----------------------------------------------------------------------
# Process-pool fan-out (module-global worker state, same discipline as
# repro.experiments.parallel.ShardStatPool)
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, object] = {}


def _featurize_worker_init(state: Dict[str, object], descriptor) -> None:
    _WORKER_STATE.clear()
    arrays: Dict[str, np.ndarray] = dict(state["arrays"])
    obj_arrays: Dict[str, np.ndarray] = dict(state["object_arrays"])
    segment = None
    if descriptor is not None:
        from ..experiments.parallel import attach_shared_arrays

        shared, segment = attach_shared_arrays(descriptor)
        from ..experiments.parallel import resolve_shared

        arrays = resolve_shared(arrays, shared)
        obj_arrays = resolve_shared(obj_arrays, shared)
    _WORKER_STATE["arrays"] = arrays
    _WORKER_STATE["object_stats"] = ObjectStats(**obj_arrays)
    _WORKER_STATE["half_life"] = state["half_life"]
    _WORKER_STATE["segment"] = segment


def _featurize_worker_chunk(start: int, stop: int) -> SourceStats:
    return compute_source_stats_chunk(
        _WORKER_STATE["arrays"],
        _WORKER_STATE["object_stats"],
        start,
        stop,
        half_life=_WORKER_STATE["half_life"],
    )


def _parallel_chunks(
    arrays: Mapping[str, np.ndarray],
    object_stats: ObjectStats,
    chunks: Sequence[range],
    half_life: float,
    jobs: int,
) -> List[SourceStats]:
    from concurrent.futures import ProcessPoolExecutor

    from ..experiments.parallel import (
        SharedArrayPack,
        extract_shared,
        sharing_is_worthwhile,
    )

    state: Dict[str, object] = {
        "arrays": {name: arrays[name] for name in STAT_ARRAYS},
        "object_arrays": object_stats.as_arrays(),
        "half_life": half_life,
    }
    pack: Optional[SharedArrayPack] = None
    descriptor = None
    if sharing_is_worthwhile():
        pool: Dict[str, np.ndarray] = {}
        state["arrays"] = extract_shared(state["arrays"], pool, prefix="fz")
        state["object_arrays"] = extract_shared(state["object_arrays"], pool, prefix="fzobj")
        if pool:
            pack = SharedArrayPack(pool)
            descriptor = pack.descriptor
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunks)),
            initializer=_featurize_worker_init,
            initargs=(state, descriptor),
        ) as pool_exec:
            futures = [pool_exec.submit(_featurize_worker_chunk, c.start, c.stop) for c in chunks]
            return [f.result() for f in futures]
    finally:
        if pack is not None:
            pack.release()


# ----------------------------------------------------------------------
# Incremental (streaming) accumulation
# ----------------------------------------------------------------------
class RunningSourceStats:
    """O(batch) streaming counterpart of :func:`compute_source_stats`.

    Feed every :class:`~repro.fusion.encoding.AppendBatch` produced by an
    :class:`~repro.fusion.encoding.IncrementalEncoding` through
    :meth:`observe` (starting from an empty encoding).  Row/volume
    accumulators update purely from the batch; consensus-dependent
    accumulators are re-derived for the touched objects only, by reading
    each touched object's claim span (old claims are the span prefix —
    appends land at the span's end in arrival order).

    :meth:`snapshot` returns a :class:`SourceStats` matching the cold
    computation exactly on integer fields; float fields agree to
    accumulation-order tolerance (``decayed_volume`` is rescaled rather
    than recomputed when a source's ``last_row`` advances).
    """

    def __init__(self, half_life: float = DEFAULT_HALF_LIFE) -> None:
        self.half_life = float(half_life)
        self.n_observations = 0
        self._capacity = 16
        self._n_sources = 0
        self._int_fields = (
            "n_claims",
            "n_solo",
            "n_consensus",
            "n_contradicted",
        )
        self._float_fields = (
            "sum_domain",
            "sum_coclaim",
            "sum_agree",
            "sum_entropy",
            "sum_row",
            "decayed_volume",
            "decayed_agree",
        )
        for name in self._int_fields:
            setattr(self, name, np.zeros(self._capacity, dtype=np.int64))
        for name in self._float_fields:
            setattr(self, name, np.zeros(self._capacity, dtype=float))
        self.first_row = np.full(self._capacity, _ROW_SENTINEL, dtype=np.int64)
        self.last_row = np.full(self._capacity, -1, dtype=np.int64)

    def _grow(self, n_sources: int) -> None:
        if n_sources <= self._capacity:
            self._n_sources = max(self._n_sources, n_sources)
            return
        new_capacity = max(2 * self._capacity, n_sources)
        pad = new_capacity - self._capacity
        for name in self._int_fields + self._float_fields:
            arr = getattr(self, name)
            setattr(self, name, np.concatenate([arr, np.zeros(pad, dtype=arr.dtype)]))
        self.first_row = np.concatenate(
            [self.first_row, np.full(pad, _ROW_SENTINEL, dtype=np.int64)]
        )
        self.last_row = np.concatenate([self.last_row, np.full(pad, -1, dtype=np.int64)])
        self._capacity = new_capacity
        self._n_sources = max(self._n_sources, n_sources)

    # ------------------------------------------------------------------
    def observe(self, encoding, batch) -> None:
        """Fold one :class:`AppendBatch` (already applied to ``encoding``)."""
        k = len(batch)
        if k == 0:
            return
        src = batch.source_idx
        self._grow(int(src.max()) + 1)
        rows = self.n_observations + np.arange(k, dtype=np.int64)
        self.n_observations += k

        counts = np.bincount(src, minlength=self._n_sources)[: self._n_sources]
        touched_src = np.flatnonzero(counts)
        self.n_claims[: self._n_sources] += counts
        self.sum_row[: self._n_sources] += np.bincount(
            src, weights=rows.astype(float), minlength=self._n_sources
        )[: self._n_sources]

        batch_first = np.full(self._n_sources, _ROW_SENTINEL, dtype=np.int64)
        np.minimum.at(batch_first, src, rows)
        batch_last = np.full(self._n_sources, -1, dtype=np.int64)
        np.maximum.at(batch_last, src, rows)
        new_last = np.maximum(self.last_row[: self._n_sources], batch_last)

        # Rescale the decayed accumulators to the advanced clock, then add
        # the batch's (<= 0 exponent) volume terms.  (decayed_agree's new
        # terms land in the per-object pass below, which runs after
        # last_row is advanced so its weights match the rescaled state.)
        had_prior = self.last_row[touched_src] >= 0
        shift = np.zeros(touched_src.shape[0])
        shift[had_prior] = (
            self.last_row[touched_src[had_prior]] - new_last[touched_src[had_prior]]
        ) / self.half_life
        rescale = np.exp2(shift)
        self.decayed_volume[touched_src] *= rescale
        self.decayed_agree[touched_src] *= rescale
        age = (rows.astype(float) - new_last[src].astype(float)) / self.half_life
        self.decayed_volume[: self._n_sources] += np.bincount(
            src, weights=np.exp2(age), minlength=self._n_sources
        )[: self._n_sources]

        np.minimum.at(self.first_row, src, rows)
        self.last_row[: self._n_sources] = new_last

        # Consensus-dependent stats: re-derive each touched object's
        # contribution.  Old claims are the span prefix (the batch's k_new
        # claims sit at the span's end, in arrival order).
        new_per_object = np.bincount(batch.object_idx)
        for o_idx in np.flatnonzero(new_per_object):
            all_src, all_code, all_rows = encoding.object_claims(int(o_idx), with_rows=True)
            k_new = int(new_per_object[o_idx])
            if all_src.shape[0] > k_new:
                self._object_contribution(
                    all_src[:-k_new], all_code[:-k_new], all_rows[:-k_new], -1.0
                )
            self._object_contribution(all_src, all_code, all_rows, +1.0)

    def _object_contribution(
        self, src: np.ndarray, code: np.ndarray, rows: np.ndarray, sign: float
    ) -> None:
        n = src.shape[0]
        if n == 0:
            return
        # Codes are minted in first-claim order, so the claims seen so far
        # cover exactly 0..d-1.
        d = int(code.max()) + 1
        counts = np.bincount(code, minlength=d)
        p = counts / n
        terms = np.where(counts > 0, -p * np.log(np.where(counts > 0, p, 1.0)), 0.0)
        entropy = float(terms.sum() / np.log(max(d, 2)))
        consensus = int(np.argmax(counts))
        votes = counts[code]

        np.add.at(self.n_solo, src, np.int64(sign) if n == 1 else np.int64(0))
        np.add.at(self.n_consensus, src, np.where(code == consensus, sign, 0).astype(np.int64))
        np.add.at(self.n_contradicted, src, np.where(votes < n, sign, 0).astype(np.int64))
        np.add.at(self.sum_domain, src, sign * float(d))
        np.add.at(self.sum_coclaim, src, sign * float(n - 1))
        np.add.at(self.sum_agree, src, sign * (votes - 1).astype(float))
        np.add.at(self.sum_entropy, src, sign * entropy)
        # Weights are relative to each source's *current* last_row, which
        # matches the accumulator after observe()'s rescale step.
        weights = np.exp2((rows.astype(float) - self.last_row[src].astype(float)) / self.half_life)
        np.add.at(self.decayed_agree, src, sign * weights * (votes - 1).astype(float))

    # ------------------------------------------------------------------
    def snapshot(self, n_objects: int) -> SourceStats:
        """Materialize the accumulated state as a :class:`SourceStats`."""
        n = self._n_sources
        return SourceStats(
            source_start=0,
            source_stop=n,
            n_observations=self.n_observations,
            n_objects=int(n_objects),
            half_life=self.half_life,
            n_claims=self.n_claims[:n].copy(),
            n_solo=self.n_solo[:n].copy(),
            n_consensus=self.n_consensus[:n].copy(),
            n_contradicted=self.n_contradicted[:n].copy(),
            sum_domain=self.sum_domain[:n].copy(),
            sum_coclaim=self.sum_coclaim[:n].copy(),
            sum_agree=self.sum_agree[:n].copy(),
            sum_entropy=self.sum_entropy[:n].copy(),
            sum_row=self.sum_row[:n].copy(),
            first_row=self.first_row[:n].copy(),
            last_row=self.last_row[:n].copy(),
            decayed_volume=self.decayed_volume[:n].copy(),
            decayed_agree=self.decayed_agree[:n].copy(),
        )
