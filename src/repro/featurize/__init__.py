"""Reliability featurization: data-derived source features at scale.

The paper's accuracy model (Equation 2) conditions each source's
accuracy on *domain features*.  This package supplies those features
when no metadata exists (or to augment it), computing them **from the
claims themselves**: per-source volume, object/domain breadth,
recency/staleness decay, corroboration with the per-object consensus
(all-history and recency-weighted), contradiction rate, claim overlap,
and claimed-object entropy.

Three layers:

* :mod:`~repro.featurize.stats` — chunkable per-source accumulators
  (bit-identical across any process fan-out) plus the O(batch)
  :class:`RunningSourceStats` streaming counterpart;
* :mod:`~repro.featurize.groups` — named, versioned
  :class:`FeatureGroup` column blocks over those accumulators;
* :mod:`~repro.featurize.pipeline` — :class:`FeaturizerPipeline`
  composing groups with the metadata
  :class:`~repro.fusion.features.FeatureSpace`, persisting matrices in
  a content + version addressed :class:`FeatureCache` and exposing the
  learner-facing ``design_for`` / :class:`FeaturizedSpace` adapter.

Wire into a learner via ``EMConfig(featurizer=...)`` /
``ERMConfig(featurizer=...)``, ``SLiMFast(featurizer=...)``, or the
experiments harness's ``featurizer=`` entry points.
"""

from .cache import FeatureCache, cache_key, dataset_digest
from .groups import (
    BreadthGroup,
    ContradictionGroup,
    CorroborationGroup,
    EntropyGroup,
    FeatureGroup,
    OverlapGroup,
    RecencyGroup,
    RecentCorroborationGroup,
    VolumeGroup,
    default_groups,
)
from .pipeline import (
    FEATURIZER_VERSION,
    FeaturizedDesign,
    FeaturizedSpace,
    FeaturizerPipeline,
)
from .stats import (
    DEFAULT_HALF_LIFE,
    ObjectStats,
    RunningSourceStats,
    SourceStats,
    compute_object_stats,
    compute_source_stats,
    compute_source_stats_chunk,
)

__all__ = [
    "FEATURIZER_VERSION",
    "DEFAULT_HALF_LIFE",
    "FeaturizerPipeline",
    "FeaturizedDesign",
    "FeaturizedSpace",
    "FeatureCache",
    "FeatureGroup",
    "VolumeGroup",
    "BreadthGroup",
    "RecencyGroup",
    "CorroborationGroup",
    "RecentCorroborationGroup",
    "ContradictionGroup",
    "OverlapGroup",
    "EntropyGroup",
    "default_groups",
    "SourceStats",
    "ObjectStats",
    "RunningSourceStats",
    "compute_source_stats",
    "compute_source_stats_chunk",
    "compute_object_stats",
    "dataset_digest",
    "cache_key",
]
