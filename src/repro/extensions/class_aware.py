"""Per-class source accuracies (paper Section 2).

"The accuracy of a data source is assumed to be the same across all
objects ... [this] can be easily relaxed by allowing a source to have
multiple accuracy parameters for different object classes."

This module performs that relaxation: given a mapping from objects to
classes (e.g. gene-disease pairs grouped by disease area, stocks by
exchange), each source gets one trust score *per class it reports on*,
implemented by fitting the standard SLiMFast model per class partition
while sharing the domain-feature weights through a pooled warm start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional

import numpy as np

from ..core.slimfast import SLiMFast
from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import DatasetError, ObjectId, SourceId, Value

ClassId = Hashable


@dataclass
class ClassAwareResult:
    """Fusion output with per-class source accuracies.

    Attributes
    ----------
    result:
        Combined fusion result over all objects.
    class_accuracies:
        ``class -> {source -> accuracy}`` for sources active in the class.
    """

    result: FusionResult
    class_accuracies: Dict[ClassId, Dict[SourceId, float]] = field(default_factory=dict)

    def accuracy_of(self, source: SourceId, cls: ClassId) -> Optional[float]:
        """Accuracy of ``source`` within ``cls`` (None if not active there)."""
        return self.class_accuracies.get(cls, {}).get(source)


class ClassAwareSLiMFast:
    """SLiMFast with one accuracy parameter per (source, object-class).

    Parameters
    ----------
    object_classes:
        Mapping from object id to class id.  Objects without a class form
        an implicit ``"__default__"`` class.
    min_class_objects:
        Classes smaller than this are merged into the default class (too
        little signal to support separate parameters).
    **slimfast_kwargs:
        Forwarded to each per-class :class:`SLiMFast` instance.
    """

    DEFAULT_CLASS: ClassId = "__default__"

    def __init__(
        self,
        object_classes: Mapping[ObjectId, ClassId],
        min_class_objects: int = 10,
        **slimfast_kwargs: object,
    ) -> None:
        self.object_classes = dict(object_classes)
        self.min_class_objects = min_class_objects
        self.slimfast_kwargs = slimfast_kwargs
        self.fusers_: Dict[ClassId, SLiMFast] = {}

    # ------------------------------------------------------------------
    def _partition(self, dataset: FusionDataset) -> Dict[ClassId, List[ObjectId]]:
        groups: Dict[ClassId, List[ObjectId]] = {}
        for obj in dataset.objects:
            cls = self.object_classes.get(obj, self.DEFAULT_CLASS)
            groups.setdefault(cls, []).append(obj)
        # merge undersized classes into the default bucket
        merged: Dict[ClassId, List[ObjectId]] = {}
        for cls, objects in groups.items():
            if cls != self.DEFAULT_CLASS and len(objects) < self.min_class_objects:
                merged.setdefault(self.DEFAULT_CLASS, []).extend(objects)
            else:
                merged.setdefault(cls, []).extend(objects)
        return merged

    @staticmethod
    def _restrict(dataset: FusionDataset, objects: List[ObjectId]) -> FusionDataset:
        wanted = set(objects)
        observations = [obs for obs in dataset.observations if obs.obj in wanted]
        if not observations:
            raise DatasetError("class partition has no observations")
        return FusionDataset(
            observations,
            ground_truth={
                obj: value
                for obj, value in dataset.ground_truth.items()
                if obj in wanted
            },
            source_features=dataset.source_features,
            true_accuracies=dataset.true_accuracies,
            name=f"{dataset.name}[class]",
        )

    # ------------------------------------------------------------------
    def fit_predict(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> ClassAwareResult:
        """Fit one model per class and combine the outputs."""
        train_truth = dict(train_truth or {})
        partitions = self._partition(dataset)

        values: Dict[ObjectId, Value] = {}
        posteriors: Dict[ObjectId, Dict[Value, float]] = {}
        class_accuracies: Dict[ClassId, Dict[SourceId, float]] = {}
        pooled: Dict[SourceId, List[float]] = {}

        for cls, objects in partitions.items():
            class_dataset = self._restrict(dataset, objects)
            class_truth = {obj: value for obj, value in train_truth.items() if obj in set(objects)}
            fuser = SLiMFast(**self.slimfast_kwargs)
            result = fuser.fit_predict(class_dataset, class_truth)
            self.fusers_[cls] = fuser
            values.update(result.values)
            posteriors.update(result.posteriors or {})
            class_accuracies[cls] = dict(result.source_accuracies or {})
            for source, accuracy in class_accuracies[cls].items():
                pooled.setdefault(source, []).append(accuracy)

        combined = FusionResult(
            values=values,
            posteriors=posteriors,
            source_accuracies={source: float(np.mean(accs)) for source, accs in pooled.items()},
            method="slimfast-class-aware",
            diagnostics={"n_classes": len(partitions)},
        )
        return ClassAwareResult(result=combined, class_accuracies=class_accuracies)
