"""Streaming data fusion (paper Section 6, "Efficiency of data fusion").

The paper's related work points at single-pass streaming truth discovery
[44] as the answer to fusion over high-rate feeds.  This module provides a
streaming counterpart of SLiMFast's accuracy model:

* per-source accuracy is tracked as a Beta posterior over correctness,
  updated online from (a) revealed ground truth and (b) the running
  fused estimate of each object (self-training, optional);
* object posteriors are maintained incrementally — each arriving
  observation only touches its own object's score table;
* exponential decay lets source reliability drift over time (sources go
  stale; the decay half-life is configurable).

This trades the batch model's guarantees for O(1) work per observation.
The tests validate it against the batch Counts/SLiMFast estimates on a
replayed dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, Observation, SourceId, Value
from ..optim.numerics import logit


@dataclass
class _SourceState:
    """Beta-posterior correctness state of one source."""

    correct: float
    total: float

    def accuracy(self) -> float:
        return self.correct / self.total


class StreamingFuser:
    """Single-pass fusion with online source-reliability tracking.

    Parameters
    ----------
    prior_correct, prior_total:
        Beta prior pseudo-counts; the default Beta(1.4, 0.6)-style prior
        starts every source at 0.7 — the same optimistic initialization
        the batch EM uses.
    decay:
        Multiplicative decay applied to every source's counts per
        processed observation batch; ``1.0`` disables drift tracking.
    self_training:
        When True, observations on unlabeled objects update their source's
        counts with the current fused estimate (weighted by its posterior
        confidence); when False only ground-truth feedback counts.
    """

    def __init__(
        self,
        prior_correct: float = 1.4,
        prior_total: float = 2.0,
        decay: float = 1.0,
        self_training: bool = True,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if prior_total <= 0 or prior_correct <= 0 or prior_correct >= prior_total:
            raise ValueError("priors must satisfy 0 < correct < total")
        self.prior_correct = prior_correct
        self.prior_total = prior_total
        self.decay = decay
        self.self_training = self_training
        self._sources: Dict[SourceId, _SourceState] = {}
        self._truth: Dict[ObjectId, Value] = {}
        # per-object score table: value -> accumulated trust
        self._scores: Dict[ObjectId, Dict[Value, float]] = {}
        # per-object claims: source -> value (for retrospective credit)
        self._claims: Dict[ObjectId, Dict[SourceId, Value]] = {}
        self.n_processed = 0

    # ------------------------------------------------------------------
    def _state(self, source: SourceId) -> _SourceState:
        state = self._sources.get(source)
        if state is None:
            state = _SourceState(self.prior_correct, self.prior_total)
            self._sources[source] = state
        return state

    def observe(self, observation: Observation) -> None:
        """Ingest one observation (O(1) amortized)."""
        source, obj, value = observation
        state = self._state(source)
        if self.decay < 1.0:
            state.correct *= self.decay
            state.total *= self.decay
            state.correct = max(state.correct, 1e-6)
            state.total = max(state.total, 2e-6)

        trust = float(logit(state.accuracy()))
        self._scores.setdefault(obj, {})
        self._scores[obj][value] = self._scores[obj].get(value, 0.0) + trust
        self._claims.setdefault(obj, {})[source] = value

        expected = self._truth.get(obj)
        if expected is not None:
            state.correct += 1.0 if value == expected else 0.0
            state.total += 1.0
        elif self.self_training:
            confidence = self.posterior(obj).get(value, 0.0)
            state.correct += confidence
            state.total += 1.0
        self.n_processed += 1

    def reveal_truth(self, obj: ObjectId, value: Value) -> None:
        """Feed a ground-truth label; retroactively credits past claims."""
        self._truth[obj] = value
        for source, claimed in self._claims.get(obj, {}).items():
            state = self._state(source)
            state.correct += 1.0 if claimed == value else 0.0
            state.total += 1.0

    # ------------------------------------------------------------------
    def posterior(self, obj: ObjectId) -> Dict[Value, float]:
        """Current posterior over the object's claimed values."""
        scores = self._scores.get(obj)
        if not scores:
            return {}
        if obj in self._truth:
            clamped = {value: 0.0 for value in scores}
            clamped[self._truth[obj]] = 1.0  # truth may be unclaimed
            return clamped
        values = list(scores)
        arr = np.asarray([scores[v] for v in values])
        arr = arr - arr.max()
        probs = np.exp(arr)
        probs /= probs.sum()
        return {value: float(p) for value, p in zip(values, probs)}

    def current_value(self, obj: ObjectId) -> Optional[Value]:
        """MAP estimate for one object (None if unseen)."""
        posterior = self.posterior(obj)
        if not posterior:
            return None
        return max(posterior, key=posterior.get)

    def source_accuracies(self) -> Dict[SourceId, float]:
        """Current accuracy estimate per seen source."""
        return {source: state.accuracy() for source, state in self._sources.items()}

    # ------------------------------------------------------------------
    def run(
        self,
        observations: Iterable[Observation],
        truth: Optional[Dict[ObjectId, Value]] = None,
    ) -> "StreamingFuser":
        """Replay an observation stream (truth revealed up front)."""
        for obj, value in (truth or {}).items():
            self._truth[obj] = value
        for observation in observations:
            self.observe(observation)
        return self

    def to_result(self, dataset: Optional[FusionDataset] = None) -> FusionResult:
        """Snapshot the current state as a standard fusion result.

        Pass the replayed ``dataset`` to also attach the array backing
        (value codes against the dataset's domains), so downstream metric
        evaluation uses the ``value_codes`` fast path instead of dict scans.
        """
        values = {obj: self.current_value(obj) for obj in self._scores}
        posteriors = {obj: self.posterior(obj) for obj in self._scores}
        result = FusionResult(
            values=values,
            posteriors=posteriors,
            source_accuracies=self.source_accuracies(),
            method="streaming",
            diagnostics={"n_processed": self.n_processed},
        )
        if dataset is not None:
            result.attach_dataset(dataset)
        return result


def replay_dataset(
    dataset: FusionDataset,
    train_truth: Optional[Dict[ObjectId, Value]] = None,
    seed: int = 0,
    **kwargs: object,
) -> FusionResult:
    """Stream a dataset's observations in random order through the fuser."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.n_observations)
    fuser = StreamingFuser(**kwargs)
    for obj, value in (train_truth or {}).items():
        fuser._truth[obj] = value
    for index in order:
        fuser.observe(dataset.observations[int(index)])
    return fuser.to_result(dataset)
