"""Streaming data fusion (paper Section 6, "Efficiency of data fusion").

The paper's related work points at single-pass streaming truth discovery
[44] as the answer to fusion over high-rate feeds.  This module provides a
streaming counterpart of SLiMFast's accuracy model:

* per-source accuracy is tracked as a Beta posterior over correctness,
  updated online from (a) revealed ground truth and (b) the running
  fused estimate of each object (self-training, optional);
* object posteriors are maintained incrementally — each arriving
  observation only touches its own object's score table;
* exponential decay lets source reliability drift over time (sources go
  stale; the decay half-life is configurable).

This trades the batch model's guarantees for O(batch) work per ingested
batch (O(1) dict work per observation on the reference engine).

Two engines implement the model, selected by ``backend``:

* ``"vectorized"`` (default) — array-native: source states live in flat
  Beta-count vectors, the per-object score table is **ragged** (per-object
  spans over one flat array with doubling slack, mirroring the
  incremental encoding's slot store — memory stays ``O(total claimed
  values)`` even when one object's domain is huge), and each
  :meth:`StreamingFuser.observe_batch`
  updates everything with bulk NumPy scatters over an
  :class:`~repro.fusion.encoding.IncrementalEncoding` (which also gives the
  fuser O(batch) appends and a snapshot compatible with the batch
  learners).  Batches use *batch-start* source trusts for scoring and
  apply source-state feedback after the batch, so a batch of size 1
  reproduces the reference engine **exactly**; larger batches are a
  mini-batch approximation (the equivalence tolerances are pinned in
  ``tests/test_incremental_encoding.py``).  Optionally, a periodic
  warm-started EM re-fit (:func:`repro.core.em.fit_incremental`) re-anchors
  source reliabilities and rebuilds the score table from the accumulated
  stream.
* ``"reference"`` — the original dict-per-observation Python loops, kept
  as the machine-checked ground truth.

The vectorized engine enforces dataset semantics (duplicate
``(source, object)`` claims raise), because its backing encoding must stay
equivalent to a cold compile of the accumulated stream; the reference
engine keeps its historical lenient behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .._rng import as_generator
from ..fusion.dataset import FusionDataset
from ..fusion.encoding import (
    IncrementalEncoding,
    _AppendBuffer,
    check_backend,
    expand_spans,
)
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, Observation, SourceId, Value
from ..optim.numerics import logit


@dataclass(frozen=True)
class DecayConfig:
    """Trust-forgetting policy for the streaming Beta-count vectors.

    Flat Beta counts weight a source's entire history equally, so after a
    regime change (see :func:`repro.data.scenarios.drift_scenario`) the
    stale evidence dominates forever.  A ``DecayConfig`` bounds that
    memory two ways — pass **at most one** of:

    half_life:
        Exponential forgetting: a source's pseudo-counts are halved every
        ``half_life`` observations *that source* makes (activity-based
        time, matching the legacy per-observation ``decay`` parameter:
        ``half_life=h`` is exactly ``decay=2**(-1/h)``).
    window:
        Sliding-window forgetting via an effective-sample-size cap:
        whenever a source's total pseudo-count exceeds ``window``, both
        counts are rescaled so the total equals ``window``.  Until the cap
        is reached this is *bit-identical* to flat counting; once
        saturated, each new feedback unit displaces ``1/window`` of the
        accumulated history (the O(1)-per-source rescaling approximation
        of a true last-``window``-updates window).

    ``DecayConfig()`` (neither set) is flat counting and is bit-identical
    to a fuser constructed without any decay — pinned in
    ``tests/scenarios/test_decay_differential.py``.
    """

    half_life: Optional[float] = None
    window: Optional[float] = None

    def __post_init__(self) -> None:
        if self.half_life is not None and self.window is not None:
            raise ValueError("pass at most one of half_life and window")
        if self.half_life is not None and not self.half_life > 0.0:
            raise ValueError("half_life must be positive")
        if self.window is not None and not self.window > 0.0:
            raise ValueError("window must be positive")

    @property
    def is_flat(self) -> bool:
        """True when this config disables forgetting entirely."""
        return self.half_life is None and self.window is None

    @property
    def factor(self) -> float:
        """Per-observation multiplicative decay implied by ``half_life``."""
        if self.half_life is None:
            return 1.0
        return float(2.0 ** (-1.0 / self.half_life))


@dataclass
class _SourceState:
    """Beta-posterior correctness state of one source (reference engine)."""

    correct: float
    total: float

    def accuracy(self) -> float:
        return self.correct / self.total


class _ReferenceEngine:
    """Original dict-per-observation implementation (ground truth)."""

    def __init__(self, fuser: "StreamingFuser") -> None:
        self._config = fuser
        self._sources: Dict[SourceId, _SourceState] = {}
        self._truth: Dict[ObjectId, Value] = {}
        # per-object score table: value -> accumulated trust
        self._scores: Dict[ObjectId, Dict[Value, float]] = {}
        # per-object claims: source -> value (for retrospective credit)
        self._claims: Dict[ObjectId, Dict[SourceId, Value]] = {}
        self.n_processed = 0

    # ------------------------------------------------------------------
    def _state(self, source: SourceId) -> _SourceState:
        state = self._sources.get(source)
        if state is None:
            state = _SourceState(self._config.prior_correct, self._config.prior_total)
            self._sources[source] = state
        return state

    def observe(self, observation: Observation) -> None:
        source, obj, value = observation
        state = self._state(source)
        if self._config.decay < 1.0:
            state.correct *= self._config.decay
            state.total *= self._config.decay
            state.correct = max(state.correct, 1e-6)
            state.total = max(state.total, 2e-6)

        trust = float(logit(state.accuracy()))
        self._scores.setdefault(obj, {})
        self._scores[obj][value] = self._scores[obj].get(value, 0.0) + trust
        self._claims.setdefault(obj, {})[source] = value

        expected = self._truth.get(obj)
        if expected is not None:
            state.correct += 1.0 if value == expected else 0.0
            state.total += 1.0
        elif self._config.self_training:
            confidence = self.posterior(obj).get(value, 0.0)
            state.correct += confidence
            state.total += 1.0
        self._apply_window(state)
        self.n_processed += 1

    def _apply_window(self, state: _SourceState) -> None:
        """Cap the effective sample size at the configured trust window."""
        window = self._config.trust_window
        if window is not None and state.total > window:
            scale = window / state.total
            state.correct *= scale
            state.total *= scale

    def observe_batch(self, observations: Sequence[Observation]) -> None:
        for observation in observations:
            self.observe(observation)

    def preset_truth(self, obj: ObjectId, value: Value) -> None:
        self._truth[obj] = value

    def reveal_truth(self, obj: ObjectId, value: Value) -> None:
        self._truth[obj] = value
        for source, claimed in self._claims.get(obj, {}).items():
            state = self._state(source)
            state.correct += 1.0 if claimed == value else 0.0
            state.total += 1.0
            self._apply_window(state)

    # ------------------------------------------------------------------
    def posterior(self, obj: ObjectId) -> Dict[Value, float]:
        scores = self._scores.get(obj)
        if not scores:
            return {}
        if obj in self._truth:
            clamped = {value: 0.0 for value in scores}
            clamped[self._truth[obj]] = 1.0  # truth may be unclaimed
            return clamped
        values = list(scores)
        arr = np.asarray([scores[v] for v in values])
        arr = arr - arr.max()
        probs = np.exp(arr)
        probs /= probs.sum()
        return {value: float(p) for value, p in zip(values, probs)}

    def source_accuracies(self) -> Dict[SourceId, float]:
        return {source: state.accuracy() for source, state in self._sources.items()}

    def to_result(self, dataset: Optional[FusionDataset] = None) -> FusionResult:
        values = {obj: _argmax_posterior(self.posterior(obj)) for obj in self._scores}
        posteriors = {obj: self.posterior(obj) for obj in self._scores}
        result = FusionResult(
            values=values,
            posteriors=posteriors,
            source_accuracies=self.source_accuracies(),
            method="streaming",
            diagnostics={"n_processed": self.n_processed, "backend": "reference"},
        )
        if dataset is not None:
            result.attach_dataset(dataset)
        return result


def _argmax_posterior(posterior: Dict[Value, float]) -> Optional[Value]:
    if not posterior:
        return None
    return max(posterior, key=posterior.get)


class _VectorizedEngine:
    """Array-native engine over an incremental encoding.

    Source Beta states are flat vectors; the score table is *ragged* —
    object ``o``'s scores live in
    ``_score_flat[_score_start[o] : _score_start[o] + |D_o|]`` with
    capacity slack (``_score_cap``) doubled on domain growth, exactly the
    relocate-and-double discipline of the incremental encoding's slot
    store.  Batches are processed with bulk scatters; see the module
    docstring for the batch semantics.
    """

    def __init__(self, fuser: "StreamingFuser") -> None:
        self._config = fuser
        self.encoding = IncrementalEncoding(
            source_features=fuser.source_features, name="streaming"
        )
        self._correct = np.zeros(8)
        self._total = np.zeros(8)
        self._n_sources = 0
        # Ragged score table: flat store + per-object (start, capacity)
        # spans; _score_used is the high-water mark of allocated cells.
        self._score_flat = np.zeros(16)
        self._score_used = 0
        self._score_start = _AppendBuffer(np.int64)
        self._score_cap = _AppendBuffer(np.int64)
        self._truth_code = np.full(8, -1, dtype=np.int64)  # -1 unknown, -2 unclaimed truth
        self._n_objects = 0
        self.truth: Dict[ObjectId, Value] = {}
        self.n_processed = 0
        self.n_refits = 0
        self._last_refit_at = 0
        self._warm_state = None
        self._running_stats = None
        if fuser.featurizer is not None:
            from ..featurize.stats import DEFAULT_HALF_LIFE, RunningSourceStats

            self._running_stats = RunningSourceStats(
                half_life=getattr(fuser.featurizer, "half_life", DEFAULT_HALF_LIFE)
            )

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _grow_sources(self, n_sources: int) -> None:
        capacity = self._correct.shape[0]
        if n_sources > capacity:
            new_capacity = max(2 * capacity, n_sources)
            for name in ("_correct", "_total"):
                old = getattr(self, name)
                fresh = np.zeros(new_capacity)
                fresh[: self._n_sources] = old[: self._n_sources]
                setattr(self, name, fresh)
        self._correct[self._n_sources : n_sources] = self._config.prior_correct
        self._total[self._n_sources : n_sources] = self._config.prior_total
        self._n_sources = n_sources

    def _grow_objects(self, n_objects: int) -> None:
        if n_objects > self._truth_code.shape[0]:
            fresh_codes = np.full(max(2 * self._truth_code.shape[0], n_objects), -1, dtype=np.int64)
            fresh_codes[: self._n_objects] = self._truth_code[: self._n_objects]
            self._truth_code = fresh_codes
        # New objects start with an empty score span; _sync_score_spans
        # allocates capacity once their domain size is known.
        for _ in range(self._n_objects, n_objects):
            self._score_start.push(0)
            self._score_cap.push(0)
        self._n_objects = max(self._n_objects, n_objects)

    def _grow_flat(self, needed: int) -> None:
        capacity = self._score_flat.shape[0]
        if needed > capacity:
            fresh = np.zeros(max(2 * capacity, needed))
            fresh[: self._score_used] = self._score_flat[: self._score_used]
            self._score_flat = fresh

    def _sync_score_spans(self, touched: np.ndarray) -> None:
        """Ensure every touched object's span can hold its live domain.

        Overflowing spans relocate to the tail of the flat store with
        doubled capacity (copying their accumulated scores; fresh cells
        are zero by construction, old cells become dead holes) — the same
        amortized O(1)-per-growth discipline as
        :meth:`repro.fusion.encoding.IncrementalEncoding`.
        """
        sizes = self.encoding.live_domain_sizes
        for o_idx in touched.tolist():
            need = int(sizes[o_idx])
            cap = int(self._score_cap.data[o_idx])
            if need <= cap:
                continue
            new_cap = max(2 * cap, need, 2)
            position = self._score_used
            self._grow_flat(position + new_cap)
            if cap:
                start = int(self._score_start.data[o_idx])
                self._score_flat[position : position + cap] = self._score_flat[
                    start : start + cap
                ]
            self._score_start.data[o_idx] = position
            self._score_cap.data[o_idx] = new_cap
            self._score_used = position + new_cap

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(self, observation: Observation) -> None:
        self.observe_batch([observation])

    def observe_batch(self, observations: Sequence[Observation]) -> None:
        batch = self.encoding.append(observations)
        if len(batch) == 0:
            return
        if self._running_stats is not None:
            # O(batch + touched-object claims): keeps the featurized
            # refit's design inputs current without any snapshot pass.
            self._running_stats.observe(self.encoding, batch)
        config = self._config
        n_objects_before = self._n_objects
        self._grow_sources(self.encoding.n_sources)
        self._grow_objects(self.encoding.n_objects)
        self._sync_score_spans(np.unique(batch.object_idx))

        # Resolve revealed-but-unseen truth for objects this batch introduced.
        if self.truth:
            for o_idx in range(n_objects_before, self._n_objects):
                value = self.truth.get(self.encoding.objects.item(o_idx))
                if value is None:
                    continue
                code = self.encoding.domain_by_index(o_idx).get(value)
                self._truth_code[o_idx] = code if code is not None else -2
        # A batch may claim a truth value that was previously outside the
        # object's domain; promote those codes before matching.
        pending = np.flatnonzero(self._truth_code[batch.object_idx] == -2)
        for i in pending.tolist():
            o_idx = int(batch.object_idx[i])
            if batch.values[i] == self.truth[self.encoding.objects.item(o_idx)]:
                self._truth_code[o_idx] = batch.value_code[i]

        # All per-batch state updates touch only the batch's own sources
        # and objects, so observing stays O(batch) as the stream grows.
        s_idx, o_idx, v_code = batch.source_idx, batch.object_idx, batch.value_code
        batch_sources, source_inverse, source_counts = np.unique(
            s_idx, return_inverse=True, return_counts=True
        )
        if config.decay < 1.0:
            factor = config.decay**source_counts
            self._correct[batch_sources] = np.maximum(
                self._correct[batch_sources] * factor, 1e-6
            )
            self._total[batch_sources] = np.maximum(self._total[batch_sources] * factor, 2e-6)

        # Batch-start trusts score the whole batch (see module docstring).
        trust = logit(self._correct[batch_sources] / self._total[batch_sources])
        np.add.at(
            self._score_flat,
            self._score_start.data[o_idx] + v_code,
            trust[source_inverse],
        )

        truth_codes = self._truth_code[o_idx]
        labeled = truth_codes != -1
        if np.any(labeled):
            matched = (v_code == truth_codes) & labeled
            np.add.at(self._correct, s_idx[labeled], matched[labeled].astype(float))
            np.add.at(self._total, s_idx[labeled], 1.0)
        if config.self_training and not np.all(labeled):
            unlabeled = ~labeled
            confidence = self._batch_confidence(o_idx[unlabeled], v_code[unlabeled])
            np.add.at(self._correct, s_idx[unlabeled], confidence)
            np.add.at(self._total, s_idx[unlabeled], 1.0)
        self._apply_window(batch_sources)

        self.n_processed += len(batch)
        if (
            config.refit_every is not None
            and self.n_processed - self._last_refit_at >= config.refit_every
        ):
            self.refit()

    def _batch_confidence(self, object_idx: np.ndarray, value_code: np.ndarray) -> np.ndarray:
        """Posterior confidence of each (object, claimed value) pair."""
        starts = self._score_start.data
        if object_idx.shape[0] == 1:
            # Single-observation path mirrors the reference engine's exact
            # operation sequence (bit-identical self-training feedback).
            o_idx = int(object_idx[0])
            size = int(self.encoding.live_domain_sizes[o_idx])
            start = int(starts[o_idx])
            arr = self._score_flat[start : start + size]
            arr = arr - arr.max()
            probs = np.exp(arr)
            probs /= probs.sum()
            return probs[value_code[:1]]
        # Ragged gather: concatenate each unique object's live span and
        # run segmented max/sum reductions over the concatenation.
        unique, inverse = np.unique(object_idx, return_inverse=True)
        sizes = self.encoding.live_domain_sizes[unique]
        span_scores = self._score_flat[expand_spans(starts[unique], sizes)]
        segment_idx = np.repeat(np.arange(unique.shape[0], dtype=np.int64), sizes)
        peak = np.full(unique.shape[0], -np.inf)
        np.maximum.at(peak, segment_idx, span_scores)
        exp_sums = np.bincount(
            segment_idx,
            weights=np.exp(span_scores - peak[segment_idx]),
            minlength=unique.shape[0],
        )
        claim_scores = self._score_flat[starts[object_idx] + value_code]
        return np.exp(claim_scores - peak[inverse]) / exp_sums[inverse]

    # ------------------------------------------------------------------
    # Truth feedback
    # ------------------------------------------------------------------
    def preset_truth(self, obj: ObjectId, value: Value) -> None:
        self.truth[obj] = value
        o_idx = self.encoding.objects.get(obj)
        if o_idx is not None:
            code = self.encoding.domain_by_index(o_idx).get(value)
            self._truth_code[o_idx] = code if code is not None else -2

    def reveal_truth(self, obj: ObjectId, value: Value) -> None:
        self.preset_truth(obj, value)
        o_idx = self.encoding.objects.get(obj)
        if o_idx is None:
            return
        claim_sources, claim_codes = self.encoding.object_claims(o_idx)
        if claim_sources.shape[0] == 0:
            return
        code = self.encoding.domain_by_index(o_idx).get(value)
        matched = (
            (claim_codes == code).astype(float)
            if code is not None
            else np.zeros(claim_codes.shape[0])
        )
        np.add.at(self._correct, claim_sources, matched)
        np.add.at(self._total, claim_sources, 1.0)
        self._apply_window(claim_sources)

    def _apply_window(self, source_idx: np.ndarray) -> None:
        """Cap the touched sources' effective sample size at the window.

        ``min(1, window / total)`` leaves under-cap sources bit-identical
        (``x * 1.0 == x``) and rescales saturated ones with the same two
        float operations as the reference engine, so size-1 batches stay
        exactly equivalent.
        """
        window = self._config.trust_window
        if window is None:
            return
        scale = np.minimum(1.0, window / self._total[source_idx])
        self._correct[source_idx] = self._correct[source_idx] * scale
        self._total[source_idx] = self._total[source_idx] * scale

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def posterior(self, obj: ObjectId) -> Dict[Value, float]:
        o_idx = self.encoding.objects.get(obj)
        if o_idx is None:
            return {}
        values = self.encoding.domain_by_index(o_idx).items
        if obj in self.truth:
            clamped = {value: 0.0 for value in values}
            clamped[self.truth[obj]] = 1.0  # truth may be unclaimed
            return clamped
        start = int(self._score_start.data[o_idx])
        arr = self._score_flat[start : start + len(values)]
        arr = arr - arr.max()
        probs = np.exp(arr)
        probs /= probs.sum()
        return {value: float(p) for value, p in zip(values, probs)}

    def source_accuracies(self) -> Dict[SourceId, float]:
        n = self._n_sources
        accuracies = self._correct[:n] / self._total[:n]
        return {source: float(acc) for source, acc in zip(self.encoding.sources.items, accuracies)}

    def to_result(self, dataset: Optional[FusionDataset] = None) -> FusionResult:
        # ``dataset`` is accepted for engine-interface parity only: the
        # result is already array-backed, so there is nothing to attach.
        from ..core.structure import build_incremental_structure
        from ..optim.objectives import segment_softmax

        if self.encoding.n_observations == 0:
            # Mirror the reference engine's empty snapshot instead of
            # failing the snapshot materialization.
            return FusionResult(
                values={},
                posteriors={},
                source_accuracies={},
                method="streaming",
                diagnostics={
                    "n_processed": 0,
                    "backend": "vectorized",
                    "n_refits": self.n_refits,
                },
            )
        encoding = self.encoding
        structure = build_incremental_structure(encoding)
        flat_scores = self._score_flat[
            self._score_start.data[encoding.pair_object_idx] + encoding.pair_value_code
        ]
        probs = segment_softmax(flat_scores, encoding.pair_object_idx, encoding.n_objects)
        n = self._n_sources
        result = FusionResult.from_rows(
            structure,
            probs,
            clamp=self.truth,
            accuracy_vector=self._correct[:n] / self._total[:n],
            source_ids=encoding.sources.items,
            method="streaming",
            diagnostics={
                "n_processed": self.n_processed,
                "backend": "vectorized",
                "n_refits": self.n_refits,
            },
        )
        return result

    # ------------------------------------------------------------------
    # Periodic batch re-fit
    # ------------------------------------------------------------------
    def refit(self) -> None:
        """Re-anchor source reliabilities with a warm-started EM re-fit.

        Runs :func:`repro.core.em.fit_incremental` over the accumulated
        stream (seeded with the previous re-fit's
        :class:`~repro.optim.solvers.WarmStartState`), replaces each
        source's Beta mean with the fitted accuracy (its pseudo-count
        weight is preserved), and rebuilds the score table from every past
        claim under the re-fitted trusts — a single bulk scatter over the
        encoding snapshot.
        """
        from ..core.em import fit_incremental

        design = feature_space = None
        if self._config.featurizer is not None and self._running_stats is not None:
            # Assemble the featurized design from the running accumulators
            # (no snapshot recompute); fit_incremental then skips its own
            # design resolution entirely.
            stats = self._running_stats.snapshot(self.encoding.n_objects)
            design, feature_space = self._config.featurizer.design_from_stats(
                stats,
                self.encoding.sources.items,
                self.encoding.source_features,
            )
        model, learner = fit_incremental(
            self.encoding,
            truth=self.truth,
            warm_state=self._warm_state,
            design=design,
            feature_space=feature_space,
            **dict(self._config.refit_overrides or {}),
        )
        self._warm_state = learner.warm_state_
        n = self._n_sources
        accuracies = np.clip(model.accuracies(), 1e-6, 1.0 - 1e-6)
        self._correct[:n] = accuracies * self._total[:n]
        trust = logit(accuracies)
        encoding = self.encoding
        self._score_flat[: self._score_used] = 0.0
        np.add.at(
            self._score_flat,
            self._score_start.data[encoding.obs_object_idx] + encoding.obs_value_code,
            trust[encoding.obs_source_idx],
        )
        self._last_refit_at = self.n_processed
        self.n_refits += 1


class StreamingFuser:
    """Single-pass fusion with online source-reliability tracking.

    Parameters
    ----------
    prior_correct, prior_total:
        Beta prior pseudo-counts; the default Beta(1.4, 0.6)-style prior
        starts every source at 0.7 — the same optimistic initialization
        the batch EM uses.
    decay:
        Multiplicative decay applied to a source's counts per processed
        observation it makes; ``1.0`` disables drift tracking.  Prefer
        the equivalent but self-documenting
        ``trust_decay=DecayConfig(half_life=...)`` spelling.
    trust_decay:
        A :class:`DecayConfig` bounding trust memory so re-anchoring can
        track accuracy drift: ``half_life=h`` is exponential forgetting
        (identical to ``decay=2**(-1/h)``), ``window=w`` caps each
        source's effective sample size at ``w`` pseudo-counts.
        ``DecayConfig()`` — and equivalently ``decay=1.0`` — is
        bit-identical to flat counting.  Mutually exclusive with a
        non-default ``decay``.
    self_training:
        When True, observations on unlabeled objects update their source's
        counts with the current fused estimate (weighted by its posterior
        confidence); when False only ground-truth feedback counts.
    backend:
        ``"vectorized"`` (default) processes batches with bulk array
        scatters over an :class:`~repro.fusion.encoding.IncrementalEncoding`;
        ``"reference"`` keeps the original dict-per-observation loops.  A
        vectorized batch of size 1 reproduces the reference exactly;
        larger batches use batch-start trusts (see the module docstring).
    source_features:
        Optional source metadata (vectorized backend only), forwarded to
        the periodic re-fit's design matrix.
    refit_every:
        Vectorized backend only: when set, every ``refit_every`` processed
        observations trigger a warm-started EM re-fit over the accumulated
        stream (:meth:`refit` can also be called explicitly).
    refit_overrides:
        Keyword overrides forwarded to :func:`repro.core.em.fit_incremental`
        (e.g. ``{"max_iterations": 10}``).
    featurizer:
        Optional :class:`repro.featurize.FeaturizerPipeline` (vectorized
        backend only): the engine maintains
        :class:`~repro.featurize.stats.RunningSourceStats` in O(batch)
        per append, and every periodic re-fit uses a design of
        data-derived reliability features assembled from those running
        accumulators instead of the metadata-only matrix.
    """

    def __init__(
        self,
        prior_correct: float = 1.4,
        prior_total: float = 2.0,
        decay: float = 1.0,
        self_training: bool = True,
        backend: str = "vectorized",
        source_features: Optional[Mapping[SourceId, Mapping[str, object]]] = None,
        refit_every: Optional[int] = None,
        refit_overrides: Optional[Dict[str, object]] = None,
        trust_decay: Optional[DecayConfig] = None,
        featurizer: Optional[object] = None,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if prior_total <= 0 or prior_correct <= 0 or prior_correct >= prior_total:
            raise ValueError("priors must satisfy 0 < correct < total")
        if trust_decay is not None:
            if decay != 1.0:
                raise ValueError(
                    "pass either the legacy decay factor or trust_decay, not both"
                )
            if trust_decay.window is not None and trust_decay.window < prior_total:
                raise ValueError(
                    "trust_decay.window must be at least prior_total "
                    "(the prior pseudo-counts must fit inside the window)"
                )
            decay = trust_decay.factor
        check_backend(backend)
        if refit_every is not None and refit_every <= 0:
            raise ValueError("refit_every must be a positive observation count")
        if backend == "reference" and (
            refit_every is not None
            or refit_overrides is not None
            or source_features is not None
            or featurizer is not None
        ):
            raise ValueError(
                "refit_every/refit_overrides/source_features/featurizer require "
                "backend='vectorized'; the reference engine has no re-fit hook"
            )
        if featurizer is not None and not hasattr(featurizer, "design_from_stats"):
            raise ValueError(
                "featurizer must provide design_from_stats "
                "(e.g. repro.featurize.FeaturizerPipeline), got "
                f"{type(featurizer).__name__}"
            )
        self.prior_correct = prior_correct
        self.prior_total = prior_total
        self.decay = decay
        self.trust_decay = trust_decay
        self.trust_window = trust_decay.window if trust_decay is not None else None
        self.self_training = self_training
        self.backend = backend
        self.source_features = source_features
        self.refit_every = refit_every
        self.refit_overrides = refit_overrides
        self.featurizer = featurizer
        self._engine = (
            _VectorizedEngine(self) if backend == "vectorized" else _ReferenceEngine(self)
        )

    def __getattr__(self, name: str):
        # Engine internals (including the reference engine's historical
        # private attributes) remain reachable through the fuser.
        engine = self.__dict__.get("_engine")
        if engine is None:
            raise AttributeError(name)
        return getattr(engine, name)

    # ------------------------------------------------------------------
    def observe(self, observation: Observation) -> None:
        """Ingest one observation.

        On the reference backend this is the O(1) dict update; on the
        vectorized backend it is a batch of size 1 — asymptotically
        O(batch) like any batch, but each call pays a constant NumPy
        dispatch overhead, so high-rate feeds should prefer
        :meth:`observe_batch`.
        """
        self._engine.observe(observation)

    def observe_batch(self, observations: Sequence[Observation | tuple]) -> None:
        """Ingest a batch of observations in bulk.

        The vectorized backend's primary entry point: one O(batch) append
        into the incremental encoding plus a constant number of array
        scatters, regardless of batch size.
        """
        self._engine.observe_batch(list(observations))

    def reveal_truth(self, obj: ObjectId, value: Value) -> None:
        """Feed a ground-truth label; retroactively credits past claims."""
        self._engine.reveal_truth(obj, value)

    # ------------------------------------------------------------------
    def posterior(self, obj: ObjectId) -> Dict[Value, float]:
        """Current posterior over the object's claimed values."""
        return self._engine.posterior(obj)

    def current_value(self, obj: ObjectId) -> Optional[Value]:
        """MAP estimate for one object (None if unseen)."""
        return _argmax_posterior(self._engine.posterior(obj))

    def source_accuracies(self) -> Dict[SourceId, float]:
        """Current accuracy estimate per seen source."""
        return self._engine.source_accuracies()

    # ------------------------------------------------------------------
    def run(
        self,
        observations: Iterable[Observation],
        truth: Optional[Dict[ObjectId, Value]] = None,
        batch_size: int = 256,
    ) -> "StreamingFuser":
        """Replay an observation stream (truth revealed up front)."""
        for obj, value in (truth or {}).items():
            self._engine.preset_truth(obj, value)
        if self.backend == "reference":
            for observation in observations:
                self._engine.observe(observation)
            return self
        chunk: List[Observation] = []
        for observation in observations:
            chunk.append(observation)
            if len(chunk) >= batch_size:
                self._engine.observe_batch(chunk)
                chunk = []
        if chunk:
            self._engine.observe_batch(chunk)
        return self

    def to_result(self, dataset: Optional[FusionDataset] = None) -> FusionResult:
        """Snapshot the current state as a standard fusion result.

        The vectorized backend packages the score table directly as an
        array-backed :class:`~repro.fusion.result.FusionResult` (one
        segmented softmax, no per-object dicts); the reference backend
        builds the classic dict result and, when the replayed ``dataset``
        is passed, promotes it to array form via ``attach_dataset``.
        """
        return self._engine.to_result(dataset)

    def publish_state(self, with_dataset: bool = False) -> Dict[str, object]:
        """Package the current state for the serving layer (vectorized only).

        Returns everything ``repro.serve`` needs to publish an immutable
        snapshot: ``result`` (the array-backed :meth:`to_result`
        snapshot), ``truth`` (a copy of the revealed labels), the stream
        counters ``n_observations`` / ``n_processed`` / ``n_refits``, and
        — when ``with_dataset`` is True — ``dataset``, the accumulated
        stream exported via ``IncrementalEncoding.to_dataset`` with the
        frozen compiled encoding attached (an O(n) walk; leave it off on
        hot publish paths).  Raises ``ValueError`` on the reference
        backend, which has no array state to publish.
        """
        if self.backend != "vectorized":
            raise ValueError("publish_state requires backend='vectorized'")
        engine = self._engine
        dataset = None
        if with_dataset and engine.encoding.n_observations:
            dataset = engine.encoding.to_dataset(attach_encoding=True)
        return {
            "result": engine.to_result(),
            "truth": dict(engine.truth),
            "n_observations": engine.encoding.n_observations,
            "n_processed": engine.n_processed,
            "n_refits": engine.n_refits,
            "dataset": dataset,
        }


def replay_dataset(
    dataset: FusionDataset,
    train_truth: Optional[Dict[ObjectId, Value]] = None,
    seed: int = 0,
    batch_size: int = 256,
    **kwargs: object,
) -> FusionResult:
    """Stream a dataset's observations in random order through the fuser.

    ``batch_size`` controls the vectorized backend's mini-batch size
    (ignored by ``backend="reference"``); remaining keyword arguments are
    forwarded to :class:`StreamingFuser`.  Note mini-batching changes the
    numbers, not just the speed: batches score with batch-start trusts,
    so only ``batch_size=1`` (or ``backend="reference"``) reproduces the
    exact sequential replay estimates.
    """
    rng = as_generator(seed)
    order = rng.permutation(dataset.n_observations)
    fuser = StreamingFuser(**kwargs)
    truth = dict(train_truth or {})
    observations = [dataset.observations[int(index)] for index in order]
    fuser.run(observations, truth=truth, batch_size=batch_size)
    return fuser.to_result(dataset)
