"""Open-world semantics (paper Section 2).

The core model assumes single-truth *closed-world* semantics: every
object's true value is claimed by at least one source.  The paper notes
the model "can support open-world semantics ... by allowing variables
``v*_o`` to take a wildcard value corresponding to the unknown truth".

This module implements exactly that: each object's candidate set is
extended with a wildcard :data:`UNKNOWN` value whose score is a learned
(or user-set) scalar ``theta``.  Objects whose claimed values are all
weakly supported then resolve to UNKNOWN instead of being forced onto a
claimed value — the behaviour a curator wants when no source is credible.

The wildcard's weight can be calibrated from ground truth containing
UNKNOWN labels (objects known to have no correct claim), or set manually
as an abstention threshold in log-odds units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..core.model import AccuracyModel
from ..core.structure import PairStructure, build_pair_structure
from ..core.inference import pair_scores
from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, Value
from ..optim.numerics import softmax

#: The wildcard value representing "no claimed value is correct".
UNKNOWN: Value = "__unknown__"


@dataclass
class OpenWorldResult:
    """Open-world fusion output.

    Attributes
    ----------
    result:
        Standard :class:`FusionResult`; objects may map to :data:`UNKNOWN`.
    abstained:
        Objects resolved to the wildcard.
    theta:
        The wildcard score used.
    """

    result: FusionResult
    abstained: frozenset
    theta: float


def open_world_posteriors(
    dataset: FusionDataset,
    model: AccuracyModel,
    theta: float,
    structure: Optional[PairStructure] = None,
) -> Dict[ObjectId, Dict[Value, float]]:
    """Posteriors with an UNKNOWN candidate of log-score ``theta`` per object.

    ``theta`` competes against the trust-weighted claimed values: an object
    whose best claimed value scores below ``theta`` resolves to UNKNOWN.
    """
    structure = structure if structure is not None else build_pair_structure(dataset)
    scores = pair_scores(structure, model.trust_scores())
    posteriors: Dict[ObjectId, Dict[Value, float]] = {}
    for position, obj in enumerate(structure.object_ids):
        rows = structure.rows_of(position)
        block = np.concatenate([scores[rows.start : rows.stop], [theta]])
        probs = softmax(block)
        dist = {structure.pair_values[row]: float(probs[i]) for i, row in enumerate(rows)}
        dist[UNKNOWN] = float(probs[-1])
        posteriors[obj] = dist
    return posteriors


def calibrate_theta(
    dataset: FusionDataset,
    model: AccuracyModel,
    truth: Mapping[ObjectId, Value],
    grid: Optional[np.ndarray] = None,
) -> float:
    """Pick the wildcard score maximizing labeled open-world accuracy.

    ``truth`` may label objects with :data:`UNKNOWN` (no claimed value is
    correct) alongside ordinary values; the chosen ``theta`` balances
    abstaining on the former against keeping the latter resolved.
    """
    if grid is None:
        grid = np.linspace(-5.0, 8.0, 27)
    structure = build_pair_structure(dataset)
    best_theta = float(grid[0])
    best_accuracy = -1.0
    for theta in grid:
        posteriors = open_world_posteriors(dataset, model, float(theta), structure)
        correct = 0
        for obj, expected in truth.items():
            dist = posteriors.get(obj)
            if dist is None:
                continue
            predicted = max(dist, key=dist.get)
            correct += int(predicted == expected)
        accuracy = correct / max(len(truth), 1)
        if accuracy > best_accuracy:
            best_accuracy = accuracy
            best_theta = float(theta)
    return best_theta


class OpenWorldSLiMFast:
    """Open-world wrapper around a fitted accuracy model.

    Usage::

        fuser = SLiMFast().fit(dataset, train_truth)
        ow = OpenWorldSLiMFast(theta=2.0)   # or theta=None + calibrate
        out = ow.predict(dataset, fuser.model_, train_truth)
        out.result.values                    # may contain UNKNOWN
    """

    def __init__(self, theta: Optional[float] = None) -> None:
        self.theta = theta

    def predict(
        self,
        dataset: FusionDataset,
        model: AccuracyModel,
        truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> OpenWorldResult:
        """Open-world inference; calibrates ``theta`` from ``truth`` if unset."""
        theta = self.theta
        if theta is None:
            if not truth:
                raise ValueError("theta is unset and no ground truth was given to calibrate it")
            theta = calibrate_theta(dataset, model, truth)
        posteriors = open_world_posteriors(dataset, model, theta)
        values = {obj: max(dist, key=dist.get) for obj, dist in posteriors.items()}
        if truth:
            for obj, expected in truth.items():
                if obj in values:
                    values[obj] = expected
        abstained = frozenset(obj for obj, value in values.items() if value == UNKNOWN)
        result = FusionResult(
            values=values,
            posteriors=posteriors,
            source_accuracies=model.accuracy_map(),
            method="slimfast-open-world",
            diagnostics={"theta": theta, "n_abstained": len(abstained)},
        )
        return OpenWorldResult(result=result, abstained=abstained, theta=theta)
