"""Posterior calibration diagnostics.

SLiMFast's probabilistic semantics promise interpretable posteriors: the
paper's diagnosis use case ("formal guarantees that the returned
associations are correct within a certain margin of error") needs the
posterior probabilities to be *calibrated* — among objects predicted with
confidence ~0.9, about 90% should actually be correct.

This module measures that:

* :func:`reliability_curve` — bucketed confidence-vs-accuracy points;
* :func:`expected_calibration_error` — the standard ECE summary;
* :func:`confidence_threshold_for_precision` — the smallest posterior
  confidence at which the empirical precision reaches a target (the
  "margin of error" dial for the genomics curator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple, Union

import numpy as np

from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, Value

PosteriorSource = Union[Mapping[ObjectId, Mapping[Value, float]], FusionResult]


@dataclass
class ReliabilityPoint:
    """One confidence bucket of the reliability curve."""

    confidence_low: float
    confidence_high: float
    mean_confidence: float
    accuracy: float
    count: int


def _predictions_with_confidence(
    posteriors: PosteriorSource,
    truth: Mapping[ObjectId, Value],
) -> List[Tuple[float, bool]]:
    if isinstance(posteriors, FusionResult):
        result = posteriors
        if result.has_arrays:
            # Array fast path: MAP confidence and values straight from the
            # posterior matrix / value codes, no per-object dict views.
            index = result.position_index()
            objects = [obj for obj in truth if obj in index]
            positions = np.asarray([index[obj] for obj in objects], dtype=np.int64)
            confidence = result.confidence_vector()[positions]
            predicted = result.predicted_values(positions)
            return [
                (float(c), value == truth[obj])
                for obj, c, value in zip(objects, confidence, predicted)
            ]
        posteriors = result.posteriors or {}
    pairs: List[Tuple[float, bool]] = []
    for obj, expected in truth.items():
        dist = posteriors.get(obj)
        if not dist:
            continue
        predicted = max(dist, key=dist.get)
        pairs.append((float(dist[predicted]), predicted == expected))
    return pairs


def reliability_curve(
    posteriors: PosteriorSource,
    truth: Mapping[ObjectId, Value],
    n_buckets: int = 10,
) -> List[ReliabilityPoint]:
    """Bucketed confidence-vs-accuracy curve over labeled objects."""
    pairs = _predictions_with_confidence(posteriors, truth)
    if not pairs:
        return []
    edges = np.linspace(0.0, 1.0, n_buckets + 1)
    points: List[ReliabilityPoint] = []
    for i in range(n_buckets):
        low, high = float(edges[i]), float(edges[i + 1])
        bucket = [
            (confidence, correct)
            for confidence, correct in pairs
            if low <= confidence < high or (i == n_buckets - 1 and confidence == 1.0)
        ]
        if not bucket:
            continue
        confidences = [c for c, _ in bucket]
        corrects = [int(ok) for _, ok in bucket]
        points.append(
            ReliabilityPoint(
                confidence_low=low,
                confidence_high=high,
                mean_confidence=float(np.mean(confidences)),
                accuracy=float(np.mean(corrects)),
                count=len(bucket),
            )
        )
    return points


def expected_calibration_error(
    posteriors: PosteriorSource,
    truth: Mapping[ObjectId, Value],
    n_buckets: int = 10,
) -> float:
    """ECE: count-weighted |confidence - accuracy| over the buckets."""
    points = reliability_curve(posteriors, truth, n_buckets)
    total = sum(point.count for point in points)
    if total == 0:
        return float("nan")
    return float(
        sum(point.count * abs(point.mean_confidence - point.accuracy) for point in points)
        / total
    )


def confidence_threshold_for_precision(
    posteriors: PosteriorSource,
    truth: Mapping[ObjectId, Value],
    target_precision: float,
) -> Optional[float]:
    """Smallest confidence threshold achieving ``target_precision``.

    Predictions with confidence >= threshold are "accepted"; the returned
    threshold is the lowest one whose accepted set has empirical precision
    at or above the target.  Returns ``None`` when even the most confident
    predictions miss the target.
    """
    pairs = sorted(_predictions_with_confidence(posteriors, truth), key=lambda p: -p[0])
    if not pairs:
        return None
    best: Optional[float] = None
    correct = 0
    for i, (confidence, ok) in enumerate(pairs, start=1):
        correct += int(ok)
        if correct / i >= target_precision:
            best = confidence
    return best


def coverage_at_threshold(
    posteriors: PosteriorSource,
    truth: Mapping[ObjectId, Value],
    threshold: float,
) -> Tuple[float, float]:
    """(coverage, precision) of accepting predictions above ``threshold``."""
    pairs = _predictions_with_confidence(posteriors, truth)
    if not pairs:
        return 0.0, float("nan")
    accepted = [(c, ok) for c, ok in pairs if c >= threshold]
    coverage = len(accepted) / len(pairs)
    precision = (float(np.mean([int(ok) for _, ok in accepted])) if accepted else float("nan"))
    return coverage, precision
