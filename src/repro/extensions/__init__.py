"""Extensions the paper describes beyond the core contribution.

* :mod:`repro.extensions.open_world` — wildcard "unknown truth" values
  (Section 2's open-world remark).
* :mod:`repro.extensions.class_aware` — per-object-class source
  accuracies (Section 2's relaxation remark).
* :mod:`repro.extensions.streaming` — single-pass fusion with online
  reliability tracking (Section 6, streaming fusion).
* :mod:`repro.extensions.selection` — budgeted source selection from
  estimated accuracies (the intro's data-acquisition motivation).
* :mod:`repro.extensions.calibration` — posterior calibration
  diagnostics backing the "margin of error" use case.
"""

from .calibration import (
    ReliabilityPoint,
    confidence_threshold_for_precision,
    coverage_at_threshold,
    expected_calibration_error,
    reliability_curve,
)
from .class_aware import ClassAwareResult, ClassAwareSLiMFast
from .open_world import (
    UNKNOWN,
    OpenWorldResult,
    OpenWorldSLiMFast,
    calibrate_theta,
    open_world_posteriors,
)
from .selection import (
    LeaveOneOutImpact,
    SelectionStep,
    coverage_utility,
    evaluate_selection,
    greedy_select,
    leave_one_out_impacts,
    rank_sources,
)
from .streaming import DecayConfig, StreamingFuser, replay_dataset

__all__ = [
    "DecayConfig",
    "UNKNOWN",
    "OpenWorldSLiMFast",
    "OpenWorldResult",
    "open_world_posteriors",
    "calibrate_theta",
    "ClassAwareSLiMFast",
    "ClassAwareResult",
    "StreamingFuser",
    "replay_dataset",
    "rank_sources",
    "greedy_select",
    "coverage_utility",
    "evaluate_selection",
    "SelectionStep",
    "leave_one_out_impacts",
    "LeaveOneOutImpact",
    "reliability_curve",
    "ReliabilityPoint",
    "expected_calibration_error",
    "confidence_threshold_for_precision",
    "coverage_at_threshold",
]
