"""Source selection — "purchase only accurate data sources".

The paper's introduction motivates low-error source-accuracy estimates by
data-acquisition economics (Dong et al., "Less is more" [12]): with
per-source accuracies in hand, a user can buy the subset of sources that
maximizes fusion quality under a budget.

This module implements greedy marginal-gain selection on top of any
fitted accuracy estimates:

* :func:`rank_sources` — order sources by estimated accuracy (optionally
  weighted by coverage, since an accurate source that observes nothing is
  worthless);
* :func:`greedy_select` — iteratively add the source with the best
  estimated marginal utility until the budget is exhausted;
* :func:`coverage_utility` — the default utility: expected number of
  objects resolved correctly under an independent-votes model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from ..fusion.dataset import FusionDataset, subset_sources
from ..fusion.types import DatasetError, SourceId


@dataclass
class SelectionStep:
    """One step of the greedy selection trace."""

    source: SourceId
    utility: float
    marginal_gain: float


def rank_sources(
    dataset: FusionDataset,
    accuracies: Mapping[SourceId, float],
    coverage_weight: float = 1.0,
) -> List[SourceId]:
    """Sources ordered by ``accuracy * coverage^coverage_weight`` (desc).

    ``coverage`` is each source's observation share; ``coverage_weight=0``
    ranks purely by accuracy.
    """
    counts = dataset.source_observation_counts()
    total = float(counts.sum()) or 1.0

    def score(source: SourceId) -> float:
        idx = dataset.sources.index(source)
        coverage = counts[idx] / total
        return float(accuracies.get(source, 0.5)) * coverage**coverage_weight

    return sorted(dataset.sources.items, key=score, reverse=True)


def coverage_utility(
    dataset: FusionDataset,
    selected: Sequence[SourceId],
    accuracies: Mapping[SourceId, float],
) -> float:
    """Expected number of objects the selected sources resolve correctly.

    Uses the optimizer's independent-votes model: an object observed by
    sources with accuracies ``a_1..a_m`` is resolved with probability
    equal to a weighted-majority success estimate; unobserved objects
    count 0.  This is a cheap proxy — no fusion run needed per candidate.
    """
    chosen = set(selected)
    total = 0.0
    for o_idx in range(dataset.n_objects):
        rows = dataset.object_observation_rows(o_idx)
        accs = [
            float(accuracies.get(dataset.sources.item(int(dataset.obs_source_idx[r])), 0.5))
            for r in rows
            if dataset.sources.item(int(dataset.obs_source_idx[r])) in chosen
        ]
        if not accs:
            continue
        # success proxy: P(average-vote leans correct) via normal approx
        mean = float(np.mean(accs))
        m = len(accs)
        variance = max(mean * (1.0 - mean) / m, 1e-9)
        z = (mean - 0.5) / np.sqrt(variance)
        from scipy.stats import norm

        total += float(norm.cdf(z))
    return total


def greedy_select(
    dataset: FusionDataset,
    accuracies: Mapping[SourceId, float],
    budget: int,
    candidates: Optional[Sequence[SourceId]] = None,
) -> List[SelectionStep]:
    """Greedily pick ``budget`` sources maximizing coverage utility.

    Returns the selection trace (source added, utility after adding, and
    marginal gain) in selection order.
    """
    if budget < 1:
        raise DatasetError("budget must be at least 1")
    pool = list(candidates) if candidates is not None else dataset.sources.items
    # Greedy over a pre-ranked shortlist keeps this O(budget * pool).
    pool = rank_sources(dataset, accuracies)[: max(4 * budget, 20)] if candidates is None else pool

    selected: List[SourceId] = []
    trace: List[SelectionStep] = []
    current = 0.0
    for _ in range(min(budget, len(pool))):
        best_source = None
        best_utility = current
        for source in pool:
            if source in selected:
                continue
            utility = coverage_utility(dataset, selected + [source], accuracies)
            if utility > best_utility:
                best_utility = utility
                best_source = source
        if best_source is None:
            break
        selected.append(best_source)
        trace.append(
            SelectionStep(
                source=best_source,
                utility=best_utility,
                marginal_gain=best_utility - current,
            )
        )
        current = best_utility
    return trace


def evaluate_selection(
    dataset: FusionDataset,
    selected: Sequence[SourceId],
    fuser_factory,
    train_fraction: float = 0.1,
    seed: int = 0,
) -> float:
    """Ground-truth accuracy of fusing only the selected sources."""
    restricted = subset_sources(dataset, selected)
    split = restricted.split(train_fraction, seed=seed)
    result = fuser_factory().fit_predict(restricted, split.train_truth)
    return result.accuracy(restricted, list(split.test_objects))
