"""Source selection — "purchase only accurate data sources".

The paper's introduction motivates low-error source-accuracy estimates by
data-acquisition economics (Dong et al., "Less is more" [12]): with
per-source accuracies in hand, a user can buy the subset of sources that
maximizes fusion quality under a budget.

This module implements greedy marginal-gain selection on top of any
fitted accuracy estimates:

* :func:`rank_sources` — order sources by estimated accuracy (optionally
  weighted by coverage, since an accurate source that observes nothing is
  worthless);
* :func:`greedy_select` — iteratively add the source with the best
  estimated marginal utility until the budget is exhausted;
* :func:`coverage_utility` — the default utility: expected number of
  objects resolved correctly under an independent-votes model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Union

import numpy as np
from scipy.stats import norm

from ..fusion.dataset import FusionDataset, subset_sources
from ..fusion.result import FusionResult
from ..fusion.types import DatasetError, ObjectId, SourceId, Value

AccuracySource = Union[Mapping[SourceId, float], np.ndarray, FusionResult]


@dataclass
class SelectionStep:
    """One step of the greedy selection trace."""

    source: SourceId
    utility: float
    marginal_gain: float


def accuracy_vector_for(
    dataset: FusionDataset,
    accuracies: AccuracySource,
    default: float = 0.5,
) -> np.ndarray:
    """Per-source accuracy vector aligned to the dataset's source indices.

    ``accuracies`` may be a plain mapping, an already-aligned vector, or a
    :class:`FusionResult` (whose :attr:`source_accuracy_vector` is used
    directly when its sources match the dataset's).  Missing sources get
    ``default``.
    """
    if isinstance(accuracies, FusionResult):
        vector = accuracies.source_accuracy_vector
        if vector is not None and accuracies.source_ids == dataset.sources.items:
            return np.where(np.isnan(vector), default, vector)
        accuracies = accuracies.source_accuracies or {}
    if isinstance(accuracies, np.ndarray):
        if accuracies.shape[0] != dataset.n_sources:
            raise DatasetError("accuracy vector must align with dataset sources")
        return np.where(np.isnan(accuracies), default, accuracies)
    return np.asarray(
        [float(accuracies.get(source, default)) for source in dataset.sources.items]
    )


def rank_sources(
    dataset: FusionDataset,
    accuracies: AccuracySource,
    coverage_weight: float = 1.0,
) -> List[SourceId]:
    """Sources ordered by ``accuracy * coverage^coverage_weight`` (desc).

    ``coverage`` is each source's observation share; ``coverage_weight=0``
    ranks purely by accuracy.
    """
    counts = dataset.source_observation_counts()
    total = float(counts.sum()) or 1.0
    coverage = counts / total
    scores = accuracy_vector_for(dataset, accuracies) * coverage**coverage_weight
    # Stable descending order matches the previous sorted(..., reverse=True).
    order = np.argsort(-scores, kind="stable")
    sources = dataset.sources.items
    return [sources[i] for i in order]


def coverage_utility(
    dataset: FusionDataset,
    selected: Sequence[SourceId],
    accuracies: AccuracySource,
) -> float:
    """Expected number of objects the selected sources resolve correctly.

    Uses the optimizer's independent-votes model: an object observed by
    sources with accuracies ``a_1..a_m`` is resolved with probability
    equal to a weighted-majority success estimate; unobserved objects
    count 0.  This is a cheap proxy — no fusion run needed per candidate —
    computed as array reductions over the dataset's observation index
    (greedy selection evaluates it O(budget * pool) times).
    """
    accuracy = accuracy_vector_for(dataset, accuracies)
    chosen = np.zeros(dataset.n_sources, dtype=bool)
    for source in selected:
        chosen[dataset.sources.index(source)] = True
    include = chosen[dataset.obs_source_idx]
    counts = np.bincount(
        dataset.obs_object_idx, weights=include.astype(float), minlength=dataset.n_objects
    )
    sums = np.bincount(
        dataset.obs_object_idx,
        weights=include * accuracy[dataset.obs_source_idx],
        minlength=dataset.n_objects,
    )
    observed = counts > 0
    if not np.any(observed):
        return 0.0
    mean = sums[observed] / counts[observed]
    variance = np.maximum(mean * (1.0 - mean) / counts[observed], 1e-9)
    z = (mean - 0.5) / np.sqrt(variance)
    # success proxy: P(average-vote leans correct) via normal approx
    return float(np.sum(norm.cdf(z)))


def greedy_select(
    dataset: FusionDataset,
    accuracies: AccuracySource,
    budget: int,
    candidates: Optional[Sequence[SourceId]] = None,
) -> List[SelectionStep]:
    """Greedily pick ``budget`` sources maximizing coverage utility.

    Returns the selection trace (source added, utility after adding, and
    marginal gain) in selection order.
    """
    if budget < 1:
        raise DatasetError("budget must be at least 1")
    pool = list(candidates) if candidates is not None else dataset.sources.items
    # Greedy over a pre-ranked shortlist keeps this O(budget * pool).
    pool = rank_sources(dataset, accuracies)[: max(4 * budget, 20)] if candidates is None else pool

    selected: List[SourceId] = []
    trace: List[SelectionStep] = []
    current = 0.0
    for _ in range(min(budget, len(pool))):
        best_source = None
        best_utility = current
        for source in pool:
            if source in selected:
                continue
            utility = coverage_utility(dataset, selected + [source], accuracies)
            if utility > best_utility:
                best_utility = utility
                best_source = source
        if best_source is None:
            break
        selected.append(best_source)
        trace.append(
            SelectionStep(
                source=best_source,
                utility=best_utility,
                marginal_gain=best_utility - current,
            )
        )
        current = best_utility
    return trace


def evaluate_selection(
    dataset: FusionDataset,
    selected: Sequence[SourceId],
    fuser_factory,
    train_fraction: float = 0.1,
    seed: int = 0,
) -> float:
    """Ground-truth accuracy of fusing only the selected sources."""
    restricted = subset_sources(dataset, selected)
    split = restricted.split(train_fraction, seed=seed)
    result = fuser_factory().fit_predict(restricted, split.train_truth)
    return result.accuracy(restricted, list(split.test_objects))


@dataclass
class LeaveOneOutImpact:
    """Accuracy impact of removing one source from the fusion input.

    ``impact`` is ``baseline_accuracy - loo_accuracy``: positive means the
    source helps (removing it hurts), negative means it actively misleads
    the fusion — the sharpest signal for pruning purchased sources.
    """

    source: SourceId
    loo_accuracy: float
    impact: float


def leave_one_out_impacts(
    dataset: FusionDataset,
    train_truth: Mapping[ObjectId, Value],
    sources: Optional[Sequence[SourceId]] = None,
    learner: str = "em",
    use_features: bool = True,
    mode: str = "batched",
    overrides: Optional[Mapping[str, object]] = None,
    n_jobs: int = 1,
) -> List[LeaveOneOutImpact]:
    """Per-source fusion-accuracy impact via leave-one-source-out refits.

    The complement of :func:`greedy_select`'s cheap proxy: an *actual*
    fusion refit per candidate source, with the source's observations
    masked out.  All refits (and the baseline fit on the full source set)
    run through one batched :class:`~repro.experiments.sweeps.SweepRunner`,
    so the dataset is compiled once and each masked candidate structure is
    derived by array filtering rather than rebuilding a
    :func:`~repro.fusion.dataset.subset_sources` dataset per source;
    EM refits warm-start from the nearest prior fit.  ``mode="isolated"``
    keeps the per-fit path (the equivalence tests pin both).  ``n_jobs``
    fans the masked refits out across worker processes (``None`` = one
    per CPU; batched mode only).

    Accuracy is measured on the objects with ground truth that every
    candidate's masked dataset still covers, so all impacts compare on the
    same population.
    """
    from ..experiments.sweeps import FitSpec, SweepRunner, leave_one_out_specs

    pool = list(sources) if sources is not None else dataset.sources.items
    runner = SweepRunner(dataset, mode=mode, n_jobs=n_jobs)
    baseline_spec = FitSpec(
        name="baseline",
        learner=learner,
        train_truth=train_truth,
        use_features=use_features,
        overrides=dict(overrides or {}),
    )
    fits = runner.run(
        [baseline_spec]
        + leave_one_out_specs(
            dataset,
            train_truth,
            sources=pool,
            learner=learner,
            use_features=use_features,
            overrides=overrides,
        )
    )
    baseline, loo_fits = fits[0], fits[1:]

    # Shared evaluation population: labeled objects covered by every fit.
    population = set(dataset.ground_truth) - set(train_truth)
    for fit in loo_fits:
        population &= set(fit.result.object_ids)
    population = sorted(population, key=repr)
    if not population:
        raise DatasetError("no labeled objects survive every leave-one-out mask")

    baseline_accuracy = baseline.result.accuracy(dataset, population)
    impacts = []
    for source, fit in zip(pool, loo_fits):
        loo_accuracy = fit.result.accuracy(dataset, population)
        impacts.append(
            LeaveOneOutImpact(
                source=source,
                loo_accuracy=loo_accuracy,
                impact=baseline_accuracy - loo_accuracy,
            )
        )
    return impacts
